open Xability

type config = {
  exec_min : int;
  exec_mean : float;
  finalize_min : int;
  finalize_mean : float;
  fail_prob : float;
  fail_after_prob : float;
  finalize_fail_prob : float;
  max_consecutive_failures : int;
}

let default_config =
  {
    exec_min = 40;
    exec_mean = 40.0;
    finalize_min = 10;
    finalize_mean = 10.0;
    fail_prob = 0.0;
    fail_after_prob = 0.5;
    finalize_fail_prob = 0.0;
    max_consecutive_failures = 10;
  }

type semantics =
  | Idem of (rid:int -> payload:Value.t -> rng:Xsim.Rng.t -> Value.t)
  | Undo of {
      attempt : rid:int -> payload:Value.t -> round:int -> rng:Xsim.Rng.t -> Value.t;
      cancel : rid:int -> payload:Value.t -> round:int -> unit;
      commit : rid:int -> payload:Value.t -> round:int -> unit;
    }
  | Raw of (rid:int -> payload:Value.t -> rng:Xsim.Rng.t -> Value.t)

type round_state = {
  mutable tentative : Value.t option;  (** unfinalized effect's output *)
  mutable committed : bool;
}

type job = { req : Request.t; reply : (Value.t, string) result Xsim.Ivar.t }

type key_state = {
  k_action : Action.name;
  k_rid : int;
  mutable attempts : int;
  mutable completions : int;
  mutable applied : int;
  mutable committed_rounds : int;
  mutable cancelled_rounds : int;
  mutable fixed : Value.t option;  (** idempotent fixed output *)
  mutable consecutive_failures : int;
  mutable possible_rev : Value.t list;
  rounds : (int, round_state) Hashtbl.t;
  jobs : job Xsim.Mailbox.t;
}

type key_stats = {
  action : Action.name;
  rid : int;
  attempts : int;
  completions : int;
  applied : int;
  committed_rounds : int;
  cancelled_rounds : int;
  net_effects : int;
  possible : Value.t list;
}

type t = {
  eng : Xsim.Engine.t;
  proc : Xsim.Proc.t;  (** never killed: the external world does not crash *)
  mutable cfg : config;
  rng : Xsim.Rng.t;
  actions : (Action.name, semantics) Hashtbl.t;
  keys : (string, key_state) Hashtbl.t;
  mutable key_order : string list;  (** reverse first-seen order *)
  mutable rev_history : Event.t list;
  mutable violations_rev : string list;
  mutable in_flight : int;
  mutable listeners : (Event.t -> unit) list;  (** reverse registration order *)
}

let create eng ?(config = default_config) () =
  {
    eng;
    proc = Xsim.Proc.create ~name:"environment";
    cfg = config;
    rng = Xsim.Rng.split (Xsim.Engine.rng eng);
    actions = Hashtbl.create 16;
    keys = Hashtbl.create 64;
    key_order = [];
    rev_history = [];
    violations_rev = [];
    in_flight = 0;
    listeners = [];
  }

let engine t = t.eng
let config t = t.cfg
let set_config t cfg = t.cfg <- cfg

let register t name sem =
  if not (Action.valid_base name) then
    invalid_arg (Printf.sprintf "Environment: invalid action name %S" name);
  if Hashtbl.mem t.actions name then
    invalid_arg (Printf.sprintf "Environment: action %S already registered" name);
  Hashtbl.replace t.actions name sem

let register_idempotent t name f = register t name (Idem f)

let register_undoable t name ~attempt ~cancel ~commit =
  register t name (Undo { attempt; cancel; commit })

let register_raw t name f = register t name (Raw f)

let is_registered t name = Hashtbl.mem t.actions (Action.base name)

let kind_of t name =
  match Hashtbl.find_opt t.actions (Action.base name) with
  | Some (Idem _) -> Some Action.Idempotent
  | Some (Undo _) -> Some Action.Undoable
  | Some (Raw _) -> None
  | None -> None

let on_event t f = t.listeners <- f :: t.listeners

let record t e =
  t.rev_history <- e :: t.rev_history;
  Xsim.Engine.tracef t.eng ~source:"env" "%a" Event.pp_compact e;
  (* Registration order: an online monitor fed events out of order would
     see phantom violations. *)
  List.iter (fun f -> f e) (List.rev t.listeners)

let violation t key msg =
  t.violations_rev <- Printf.sprintf "%s: %s" key msg :: t.violations_rev

let round_state (ks : key_state) round =
  match Hashtbl.find_opt ks.rounds round with
  | Some rs -> rs
  | None ->
      let rs = { tentative = None; committed = false } in
      Hashtbl.replace ks.rounds round rs;
      rs

(* Payload of the request as seen by handlers: the application input. *)
let payload_of (req : Request.t) = req.input

let draw_duration t ~min ~mean =
  min + int_of_float (Xsim.Rng.exponential t.rng ~mean)

let should_fail t (ks : key_state) prob =
  if ks.consecutive_failures >= t.cfg.max_consecutive_failures then false
  else Xsim.Rng.chance t.rng prob

(* ------------------------------------------------------------------ *)
(* Per-key worker: serializes executions of one logical action.        *)

let apply_exec t (ks : key_state) (req : Request.t) sem =
  let rid = req.rid and payload = payload_of req in
  match sem with
  | Idem f -> (
      match ks.fixed with
      | Some out -> out
      | None ->
          let out = f ~rid ~payload ~rng:t.rng in
          ks.fixed <- Some out;
          ks.applied <- ks.applied + 1;
          ks.possible_rev <- out :: ks.possible_rev;
          out)
  | Raw f ->
      let out = f ~rid ~payload ~rng:t.rng in
      ks.applied <- ks.applied + 1;
      ks.possible_rev <- out :: ks.possible_rev;
      out
  | Undo { attempt; _ } ->
      let rs = round_state ks req.round in
      if rs.committed then
        violation t (Request.key req) "execution attempt after commit";
      if rs.tentative <> None then
        violation t (Request.key req) "execution attempt while tentative effect active";
      let out = attempt ~rid ~payload ~round:req.round ~rng:t.rng in
      rs.tentative <- Some out;
      ks.applied <- ks.applied + 1;
      ks.possible_rev <- out :: ks.possible_rev;
      out

let apply_cancel t (ks : key_state) (req : Request.t) sem =
  match sem with
  | Undo { cancel; _ } ->
      let rs = round_state ks req.round in
      if rs.committed then
        violation t (Request.key req) "cancel after commit in the same round"
      else begin
        match rs.tentative with
        | Some _ ->
            cancel ~rid:req.rid ~payload:(payload_of req) ~round:req.round;
            rs.tentative <- None;
            ks.cancelled_rounds <- ks.cancelled_rounds + 1
        | None -> () (* cancelling nothing: idempotent no-op *)
      end
  | Idem _ | Raw _ ->
      violation t (Request.key req) "cancel of a non-undoable action"

let apply_commit t (ks : key_state) (req : Request.t) sem =
  match sem with
  | Undo { commit; _ } ->
      let rs = round_state ks req.round in
      if rs.committed then () (* duplicate commit: idempotent no-op *)
      else begin
        match rs.tentative with
        | Some _ ->
            commit ~rid:req.rid ~payload:(payload_of req) ~round:req.round;
            rs.tentative <- None;
            rs.committed <- true;
            ks.committed_rounds <- ks.committed_rounds + 1
        | None ->
            violation t (Request.key req) "commit without a tentative effect"
      end
  | Idem _ | Raw _ ->
      violation t (Request.key req) "commit of a non-undoable action"

let process t (ks : key_state) (job : job) =
  let req = job.req in
  let sem =
    match Hashtbl.find_opt t.actions (Request.base_action req) with
    | Some sem -> sem
    | None ->
        failwith
          (Printf.sprintf "Environment: unregistered action %S" req.action)
  in
  let iv = Request.env_iv req in
  match Request.variant req with
  | Action.Exec ->
      ks.attempts <- ks.attempts + 1;
      record t (Event.S (Request.base_action req, iv));
      Xsim.Engine.sleep t.eng
        (draw_duration t ~min:t.cfg.exec_min ~mean:t.cfg.exec_mean);
      if should_fail t ks t.cfg.fail_prob then begin
        ks.consecutive_failures <- ks.consecutive_failures + 1;
        if Xsim.Rng.chance t.rng t.cfg.fail_after_prob then
          (* The side-effect happened, but the caller sees a failure.  No
             completion event: the effect is in doubt. *)
          ignore (apply_exec t ks req sem);
        ignore (Xsim.Ivar.try_fill job.reply (Error "action failed"))
      end
      else begin
        ks.consecutive_failures <- 0;
        let out = apply_exec t ks req sem in
        ks.completions <- ks.completions + 1;
        record t (Event.C (Request.base_action req, iv, out));
        ignore (Xsim.Ivar.try_fill job.reply (Ok out))
      end
  | Action.Cancel | Action.Commit ->
      record t (Event.S (req.action, iv));
      Xsim.Engine.sleep t.eng
        (draw_duration t ~min:t.cfg.finalize_min ~mean:t.cfg.finalize_mean);
      if should_fail t ks t.cfg.finalize_fail_prob then begin
        ks.consecutive_failures <- ks.consecutive_failures + 1;
        ignore (Xsim.Ivar.try_fill job.reply (Error "finalization failed"))
      end
      else begin
        ks.consecutive_failures <- 0;
        (match Request.variant req with
        | Action.Cancel -> apply_cancel t ks req sem
        | Action.Commit -> apply_commit t ks req sem
        | Action.Exec -> assert false);
        record t (Event.C (req.action, iv, Value.nil));
        ignore (Xsim.Ivar.try_fill job.reply (Ok Value.nil))
      end

let key_state t (req : Request.t) =
  let key = Request.key req in
  match Hashtbl.find_opt t.keys key with
  | Some ks -> ks
  | None ->
      let ks =
        {
          k_action = Request.base_action req;
          k_rid = req.rid;
          attempts = 0;
          completions = 0;
          applied = 0;
          committed_rounds = 0;
          cancelled_rounds = 0;
          fixed = None;
          consecutive_failures = 0;
          possible_rev = [];
          rounds = Hashtbl.create 4;
          jobs = Xsim.Mailbox.create ~name:("env:" ^ key) ();
        }
      in
      Hashtbl.replace t.keys key ks;
      t.key_order <- key :: t.key_order;
      (* One worker fiber per logical action, owned by the environment:
         caller crashes do not abort in-flight external work. *)
      Xsim.Engine.spawn t.eng ~proc:t.proc ~name:("env-worker:" ^ key)
        (fun () ->
          let rec loop () =
            let job = Xsim.Mailbox.take t.eng ks.jobs in
            process t ks job;
            t.in_flight <- t.in_flight - 1;
            loop ()
          in
          loop ());
      ks

let execute t req =
  let ks = key_state t req in
  let reply = Xsim.Ivar.create () in
  t.in_flight <- t.in_flight + 1;
  Xsim.Mailbox.put ks.jobs { req; reply };
  Xsim.Ivar.read t.eng reply

let in_flight t = t.in_flight

(* ------------------------------------------------------------------ *)

let history t = List.rev t.rev_history

let checker_expected t (req : Request.t) : Checker.expected =
  let kind =
    match kind_of t req.action with
    | Some k -> k
    | None -> req.kind (* raw actions keep their declared kind *)
  in
  { action = Request.base_action req; kind; logical = Request.logical_iv req }

let stats_of_key (ks : key_state) : key_stats =
  let net =
    match ks.fixed with
    | Some _ -> min ks.applied 1
    | None ->
        if Hashtbl.length ks.rounds > 0 then ks.committed_rounds
        else ks.applied
  in
  {
    action = ks.k_action;
    rid = ks.k_rid;
    attempts = ks.attempts;
    completions = ks.completions;
    applied = ks.applied;
    committed_rounds = ks.committed_rounds;
    cancelled_rounds = ks.cancelled_rounds;
    net_effects = net;
    possible = List.rev ks.possible_rev;
  }

let stats t =
  List.rev_map (fun key -> stats_of_key (Hashtbl.find t.keys key)) t.key_order

let stats_of t req =
  Option.map stats_of_key (Hashtbl.find_opt t.keys (Request.key req))

let possible_replies t req =
  match stats_of t req with Some s -> s.possible | None -> []

let violations t = List.rev t.violations_rev

let duplicate_effects t =
  List.fold_left (fun acc s -> acc + max 0 (s.net_effects - 1)) 0 (stats t)
