module Tbl = Hashtbl.Make (struct
  type t = Xnet.Address.t * Xnet.Address.t

  let equal (a1, b1) (a2, b2) =
    Xnet.Address.equal a1 a2 && Xnet.Address.equal b1 b2

  let hash (a, b) = Hashtbl.hash (Xnet.Address.hash a, Xnet.Address.hash b)
end)

module Obs_tbl = Hashtbl.Make (struct
  type t = Xnet.Address.t

  let equal = Xnet.Address.equal
  let hash = Xnet.Address.hash
end)

type t = {
  cells : bool Tbl.t;
  subscribers : (Xnet.Address.t -> unit) list ref Obs_tbl.t;
  watchers : (unit -> bool) list ref Tbl.t;
}

let create () =
  {
    cells = Tbl.create 32;
    subscribers = Obs_tbl.create 8;
    watchers = Tbl.create 32;
  }

let get t ~observer ~target =
  match Tbl.find_opt t.cells (observer, target) with
  | Some b -> b
  | None -> false

let fire_onset t ~observer ~target =
  (match Obs_tbl.find_opt t.subscribers observer with
  | Some subs -> List.iter (fun f -> f target) (List.rev !subs)
  | None -> ());
  match Tbl.find_opt t.watchers (observer, target) with
  | Some ws ->
      let pending = List.rev !ws in
      ws := [];
      List.iter (fun w -> ignore (w ())) pending
  | None -> ()

let set t ~observer ~target value =
  let before = get t ~observer ~target in
  Tbl.replace t.cells (observer, target) value;
  if value && not before then fire_onset t ~observer ~target

let subscribe t ~observer f =
  match Obs_tbl.find_opt t.subscribers observer with
  | Some subs -> subs := f :: !subs
  | None -> Obs_tbl.replace t.subscribers observer (ref [ f ])

let watch t ~observer ~target sink =
  if get t ~observer ~target then ignore (sink ())
  else
    match Tbl.find_opt t.watchers (observer, target) with
    | Some ws -> ws := sink :: !ws
    | None -> Tbl.replace t.watchers (observer, target) (ref [ sink ])
