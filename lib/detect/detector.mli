(** Failure-detector facade used by clients and replicas.

    This is the [suspect()] predicate of the paper (sections 5.2-5.3),
    extended with event subscription so fibers can block on suspicion
    instead of polling.  A detector instance is produced either by the
    test {!Oracle} or by the heartbeat-based eventually-perfect
    implementation {!Heartbeat}. *)

type t

val of_board : Board.t -> t

val suspects : t -> observer:Xnet.Address.t -> target:Xnet.Address.t -> bool
(** The paper's [suspect(target)] as evaluated at [observer], now. *)

val on_suspicion : t -> observer:Xnet.Address.t -> (Xnet.Address.t -> unit) -> unit
(** Persistent: the callback fires on every suspicion onset at [observer]. *)

val watch :
  t -> observer:Xnet.Address.t -> target:Xnet.Address.t -> (unit -> bool) -> unit
(** One-shot racing sink, fired when (or immediately if) [observer]
    suspects [target].  Compose with [Ivar.try_fill] to implement the
    paper's "await (receive ... or suspect(...))". *)

val never : t
(** A detector that never suspects anyone (for failure-free scenarios). *)
