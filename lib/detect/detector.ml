type t = Board.t

let of_board b = b
let suspects t ~observer ~target = Board.get t ~observer ~target
let on_suspicion t ~observer f = Board.subscribe t ~observer f
let watch t ~observer ~target sink = Board.watch t ~observer ~target sink
let never = Board.create ()
