(** Suspicion board: the mutable state shared by detector implementations.

    Cell [(observer, target)] holds whether [observer] currently suspects
    [target].  Implementations ([Oracle], [Heartbeat]) write cells; the
    {!Detector} facade reads them.  Subscribers are notified on suspicion
    onset (false -> true transitions) only — that is the event the paper's
    protocol reacts to. *)

type t

val create : unit -> t

val get : t -> observer:Xnet.Address.t -> target:Xnet.Address.t -> bool

val set : t -> observer:Xnet.Address.t -> target:Xnet.Address.t -> bool -> unit
(** Fires onset subscribers and watchers when flipping false -> true. *)

val subscribe : t -> observer:Xnet.Address.t -> (Xnet.Address.t -> unit) -> unit
(** Persistent subscription: called with the target on every onset observed
    by [observer]. *)

val watch :
  t -> observer:Xnet.Address.t -> target:Xnet.Address.t -> (unit -> bool) -> unit
(** One-shot sink: fired once when (or immediately if) [observer] suspects
    [target].  The sink's result is ignored (resumer-compatible type). *)
