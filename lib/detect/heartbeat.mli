(** Heartbeat-based eventually-perfect failure detector (◇P).

    Every monitored member periodically sends heartbeats on a dedicated
    transport.  Every observer tracks, per target, the time it last heard a
    heartbeat; silence beyond the target's current timeout raises a
    suspicion.  When a heartbeat later arrives from a suspected target, the
    suspicion is retracted and the timeout for that target is increased
    (the classical adaptive scheme of Chandra & Toueg).

    Properties under the simulator's latency models:
    - {e strong completeness}: a crashed member stops sending, so every
      observer's timeout eventually expires and, with no further
      heartbeats, the suspicion is permanent;
    - {e eventual strong accuracy}: once the latency model settles into a
      bounded regime (see {!Xnet.Latency.Phases}), each false suspicion
      bumps the timeout, so after finitely many mistakes the timeout
      exceeds the delay bound and accuracy holds forever. *)

type t

val create :
  Xsim.Engine.t ->
  latency:Xnet.Latency.t ->
  ?faults:Xnet.Fault.t ->
  members:(Xnet.Address.t * Xsim.Proc.t) list ->
  ?extra_observers:(Xnet.Address.t * Xsim.Proc.t) list ->
  ?period:int ->
  ?initial_timeout:int ->
  ?timeout_increment:int ->
  unit ->
  t
(** [members] both send and observe heartbeats; [extra_observers] (e.g. the
    client) only observe.  [period] is the heartbeat interval;
    [initial_timeout] the starting silence threshold; [timeout_increment]
    the additive bump applied on each refuted suspicion.  [faults]
    configures the heartbeat transport's fault plane: heartbeats ride the
    raw lossy wire (no ARQ — a retransmitted heartbeat is no freshness
    signal), so message loss converts directly into false suspicions
    until the adaptive timeout outgrows the gaps. *)

val detector : t -> Detector.t

val timeout_of : t -> observer:Xnet.Address.t -> target:Xnet.Address.t -> int
(** Current adaptive timeout (for experiments). *)

val false_suspicions : t -> int
(** Suspicions that were later refuted by a heartbeat. *)

val suspicions : t -> int
(** Total suspicion onsets raised so far. *)
