module Pair_tbl = Hashtbl.Make (struct
  type t = Xnet.Address.t * Xnet.Address.t

  let equal (a1, b1) (a2, b2) =
    Xnet.Address.equal a1 a2 && Xnet.Address.equal b1 b2

  let hash (a, b) = Hashtbl.hash (Xnet.Address.hash a, Xnet.Address.hash b)
end)

type link_state = { mutable last_heard : int; mutable timeout : int }

type t = {
  eng : Xsim.Engine.t;
  board : Board.t;
  transport : unit Xnet.Transport.t;
  links : link_state Pair_tbl.t;  (* (observer, target) *)
  period : int;
  initial_timeout : int;
  timeout_increment : int;
  mutable false_count : int;
  mutable suspicion_count : int;
}

let link t ~observer ~target =
  match Pair_tbl.find_opt t.links (observer, target) with
  | Some l -> l
  | None ->
      (* A fresh link counts silence from its creation time, not from
         t=0: a link first queried at now > initial_timeout would
         otherwise suspect the target before it ever had a chance to
         heartbeat. *)
      let l =
        { last_heard = Xsim.Engine.now t.eng; timeout = t.initial_timeout }
      in
      Pair_tbl.replace t.links (observer, target) l;
      l

let sender t addr proc =
  Xsim.Engine.spawn t.eng ~proc ~name:("hb-send:" ^ Xnet.Address.to_string addr)
    (fun () ->
      let rec loop () =
        Xnet.Transport.broadcast t.transport ~src:addr ();
        Xsim.Engine.sleep t.eng t.period;
        loop ()
      in
      loop ())

let monitor t addr proc targets =
  (* Receiving fiber: refresh last-heard times, refute suspicions. *)
  let mbox = Xnet.Transport.mailbox t.transport addr in
  Xsim.Engine.spawn t.eng ~proc ~name:("hb-recv:" ^ Xnet.Address.to_string addr)
    (fun () ->
      let rec loop () =
        let envelope = Xsim.Mailbox.take t.eng mbox in
        let target = envelope.Xnet.Transport.src in
        let l = link t ~observer:addr ~target in
        l.last_heard <- Xsim.Engine.now t.eng;
        if Board.get t.board ~observer:addr ~target then begin
          (* False suspicion refuted: retract and adapt. *)
          t.false_count <- t.false_count + 1;
          l.timeout <- l.timeout + t.timeout_increment;
          Board.set t.board ~observer:addr ~target false
        end;
        loop ()
      in
      loop ());
  (* Checking fiber: raise suspicions on silence. *)
  Xsim.Engine.spawn t.eng ~proc
    ~name:("hb-check:" ^ Xnet.Address.to_string addr) (fun () ->
      let rec loop () =
        Xsim.Engine.sleep t.eng t.period;
        let now = Xsim.Engine.now t.eng in
        List.iter
          (fun target ->
            if not (Xnet.Address.equal target addr) then begin
              let l = link t ~observer:addr ~target in
              if
                now - l.last_heard > l.timeout
                && not (Board.get t.board ~observer:addr ~target)
              then begin
                t.suspicion_count <- t.suspicion_count + 1;
                Board.set t.board ~observer:addr ~target true
              end
            end)
          targets;
        loop ()
      in
      loop ())

let create eng ~latency ?faults ~members ?(extra_observers = []) ?(period = 50)
    ?(initial_timeout = 150) ?(timeout_increment = 100) () =
  (* Heartbeats ride the raw (possibly lossy) wire, never an ARQ layer:
     a retransmitted heartbeat would defeat its own purpose as a
     freshness signal, and the paper's detector is exactly the component
     whose quality degrades with channel loss. *)
  let transport = Xnet.Transport.create eng ?faults ~latency () in
  let t =
    {
      eng;
      board = Board.create ();
      transport;
      links = Pair_tbl.create 32;
      period;
      initial_timeout;
      timeout_increment;
      false_count = 0;
      suspicion_count = 0;
    }
  in
  let member_addrs = List.map fst members in
  List.iter
    (fun (addr, proc) ->
      ignore (Xnet.Transport.register transport addr ~proc))
    (members @ extra_observers);
  List.iter
    (fun (addr, proc) ->
      sender t addr proc;
      monitor t addr proc member_addrs)
    members;
  List.iter
    (fun (addr, proc) -> monitor t addr proc member_addrs)
    extra_observers;
  t

let detector t = Detector.of_board t.board

let timeout_of t ~observer ~target = (link t ~observer ~target).timeout
let false_suspicions t = t.false_count
let suspicions t = t.suspicion_count
