type noise = { probability : float; duration : int; until : int }

type t = {
  eng : Xsim.Engine.t;
  board : Board.t;
  observers : Xnet.Address.t list;
  targets : (Xnet.Address.t * Xsim.Proc.t) list;
  detection_delay : int;
  rng : Xsim.Rng.t;
  mutable noise : noise option;
  mutable false_count : int;
}

let target_proc t addr =
  List.find_opt (fun (a, _) -> Xnet.Address.equal a addr) t.targets
  |> Option.map snd

let target_alive t addr =
  match target_proc t addr with
  | Some p -> Xsim.Proc.alive p
  | None -> true

let apply_noise t =
  match t.noise with
  | None -> ()
  | Some { probability; duration; until } ->
      if Xsim.Engine.now t.eng > until then t.noise <- None
      else
        List.iter
          (fun observer ->
            List.iter
              (fun (target, proc) ->
                if
                  Xsim.Proc.alive proc
                  && (not (Board.get t.board ~observer ~target))
                  && Xsim.Rng.chance t.rng probability
                then begin
                  t.false_count <- t.false_count + 1;
                  Board.set t.board ~observer ~target true;
                  Xsim.Engine.schedule t.eng ~delay:duration (fun () ->
                      if target_alive t target then
                        Board.set t.board ~observer ~target false)
                end)
              t.targets)
          t.observers

let create eng ~observers ~targets ?(detection_delay = 0) ?(poll_interval = 50)
    () =
  let t =
    {
      eng;
      board = Board.create ();
      observers;
      targets;
      detection_delay;
      rng = Xsim.Rng.split (Xsim.Engine.rng eng);
      noise = None;
      false_count = 0;
    }
  in
  (* Poll liveness forever; crashed targets become (and stay) suspected.
     The poller is a raw scheduled loop, not a fiber, so it can never be
     killed and costs one event per interval. *)
  let already_reported = Hashtbl.create 8 in
  let rec poll () =
    List.iter
      (fun (target, proc) ->
        if (not (Xsim.Proc.alive proc)) && not (Hashtbl.mem already_reported target)
        then begin
          Hashtbl.replace already_reported target ();
          Xsim.Engine.schedule eng ~delay:detection_delay (fun () ->
              List.iter
                (fun observer -> Board.set t.board ~observer ~target true)
                observers)
        end)
      targets;
    apply_noise t;
    if not (Xsim.Engine.stop_requested eng) then
      Xsim.Engine.schedule eng ~delay:poll_interval poll
  in
  Xsim.Engine.schedule eng ~delay:0 poll;
  t

let detector t = Detector.of_board t.board

let inject_false t ~at ~observer ~target ~duration =
  let now = Xsim.Engine.now t.eng in
  let delay = max 0 (at - now) in
  Xsim.Engine.schedule t.eng ~delay (fun () ->
      t.false_count <- t.false_count + 1;
      Board.set t.board ~observer ~target true;
      Xsim.Engine.schedule t.eng ~delay:duration (fun () ->
          if target_alive t target then
            Board.set t.board ~observer ~target false))

let enable_noise t ~probability ~duration ?(until = max_int) () =
  t.noise <- Some { probability; duration; until }

let false_suspicions t = t.false_count
