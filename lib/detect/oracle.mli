(** Oracle failure detector for tests and controlled experiments.

    The oracle watches process liveness directly: a crashed target becomes
    suspected by every observer after [detection_delay] ticks (strong
    completeness by construction).  False suspicions never occur unless
    explicitly injected — either one-off with {!inject_false}, or
    stochastically with {!enable_noise}, which makes each observer falsely
    suspect a random live target with a given probability per check period
    (suspicion retracted after [duration]).  Injected noise makes the
    detector only {e eventually} accurate, which is exactly the regime that
    drives the paper's protocol toward active-replication behaviour. *)

type t

val create :
  Xsim.Engine.t ->
  observers:Xnet.Address.t list ->
  targets:(Xnet.Address.t * Xsim.Proc.t) list ->
  ?detection_delay:int ->
  ?poll_interval:int ->
  unit ->
  t

val detector : t -> Detector.t

val inject_false :
  t ->
  at:int ->
  observer:Xnet.Address.t ->
  target:Xnet.Address.t ->
  duration:int ->
  unit
(** Schedule a false suspicion window.  If the target really is dead when
    the window closes, the suspicion persists (completeness wins). *)

val enable_noise :
  t -> probability:float -> duration:int -> ?until:int -> unit -> unit
(** From now until [until] (default: forever), at every poll each observer
    falsely suspects each live target with the given probability. *)

val false_suspicions : t -> int
(** Number of false-suspicion windows opened so far (for experiments). *)
