open Xability

type services = {
  mailer : Xsm.Services.Mailer.t;
  bank : Xsm.Services.Bank.t;
  booking : Xsm.Services.Booking.t;
  kv : Xsm.Services.Kv.t;
}

let setup_all env =
  {
    mailer = Xsm.Services.Mailer.register env ();
    bank =
      Xsm.Services.Bank.register env
        ~accounts:[ ("alice", 10_000); ("bob", 0) ]
        ();
    booking = Xsm.Services.Booking.register env ~seats:64 ();
    kv = Xsm.Services.Kv.register env ();
  }

let send client ~body =
  Xreplication.Client.request client ~action:"send" ~kind:Action.Idempotent
    ~input:(Value.str body)

let transfer client ~from_acct ~to_acct ~amount =
  Xreplication.Client.request client ~action:"transfer" ~kind:Action.Undoable
    ~input:
      (Value.pair (Value.pair (Value.str from_acct) (Value.str to_acct))
         (Value.int amount))

let reserve client ~passenger =
  Xreplication.Client.request client ~action:"reserve" ~kind:Action.Undoable
    ~input:(Value.str passenger)

let kv_put client ~key ~value =
  Xreplication.Client.request client ~action:"kv_put" ~kind:Action.Idempotent
    ~input:(Value.pair (Value.str key) value)

let kv_get client ~key =
  Xreplication.Client.request client ~action:"kv_get" ~kind:Action.Idempotent
    ~input:(Value.str key)

type mix = Idempotent_only | Undoable_only | Mixed

let sequence mix ~n client submit =
  for i = 1 to n do
    let req =
      match mix with
      | Idempotent_only -> send client ~body:(Printf.sprintf "mail-%d" i)
      | Undoable_only ->
          transfer client ~from_acct:"alice" ~to_acct:"bob" ~amount:i
      | Mixed ->
          if i mod 2 = 1 then send client ~body:(Printf.sprintf "mail-%d" i)
          else transfer client ~from_acct:"alice" ~to_acct:"bob" ~amount:i
    in
    ignore (submit req)
  done
