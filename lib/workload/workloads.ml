open Xability

type services = {
  mailer : Xsm.Services.Mailer.t;
  bank : Xsm.Services.Bank.t;
  booking : Xsm.Services.Booking.t;
  kv : Xsm.Services.Kv.t;
}

let setup_all env =
  {
    mailer = Xsm.Services.Mailer.register env ();
    bank =
      Xsm.Services.Bank.register env
        ~accounts:[ ("alice", 10_000); ("bob", 0) ]
        ();
    booking = Xsm.Services.Booking.register env ~seats:64 ();
    kv = Xsm.Services.Kv.register env ();
  }

let send client ~body =
  Xreplication.Client.request client ~action:"send" ~kind:Action.Idempotent
    ~input:(Value.str body)

let transfer client ~from_acct ~to_acct ~amount =
  Xreplication.Client.request client ~action:"transfer" ~kind:Action.Undoable
    ~input:
      (Value.pair (Value.pair (Value.str from_acct) (Value.str to_acct))
         (Value.int amount))

let reserve client ~passenger =
  Xreplication.Client.request client ~action:"reserve" ~kind:Action.Undoable
    ~input:(Value.str passenger)

let kv_put client ~key ~value =
  Xreplication.Client.request client ~action:"kv_put" ~kind:Action.Idempotent
    ~input:(Value.pair (Value.str key) value)

let kv_get client ~key =
  Xreplication.Client.request client ~action:"kv_get" ~kind:Action.Idempotent
    ~input:(Value.str key)

type mix = Idempotent_only | Undoable_only | Mixed

(* Closed-loop load for one sharded session: [n] requests pinned to the
   session's home shard (keys chosen with [Partition.key_for]), every
   [cross_every]-th replaced by a cross-shard request fanning a kv_put to
   the home shard and its clockwise neighbour.  [undoable] interleaves
   seat reservations (keyed to the home shard) — keep it off for large
   benches, the stock booking service has 64 seats. *)
let sharded_mix ?(undoable = true) ~n ~cross_every d sess =
  let part = Xshard.Deployment.partition d in
  let nshards = Xshard.Partition.shards part in
  let home = Xshard.Deployment.home sess in
  let cl = Xshard.Deployment.session_client sess in
  let key ~shard ~salt = Xshard.Partition.key_for part ~shard ~salt in
  for i = 1 to n do
    if cross_every > 0 && i mod cross_every = 0 then begin
      let neighbour = (home + 1) mod nshards in
      let parts =
        [
          kv_put cl ~key:(key ~shard:home ~salt:(100 + i)) ~value:(Value.int i);
          kv_put cl
            ~key:(key ~shard:neighbour ~salt:(100 + i))
            ~value:(Value.int i);
        ]
      in
      ignore (Xshard.Deployment.submit_cross d sess parts)
    end
    else if undoable && i mod 2 = 0 then
      ignore
        (Xshard.Deployment.submit d sess
           (reserve cl ~passenger:(key ~shard:home ~salt:i)))
    else
      ignore
        (Xshard.Deployment.submit d sess
           (kv_put cl ~key:(key ~shard:home ~salt:i) ~value:(Value.int i)))
  done

let sequence mix ~n client submit =
  for i = 1 to n do
    let req =
      match mix with
      | Idempotent_only -> send client ~body:(Printf.sprintf "mail-%d" i)
      | Undoable_only ->
          transfer client ~from_acct:"alice" ~to_acct:"bob" ~amount:i
      | Mixed ->
          if i mod 2 = 1 then send client ~body:(Printf.sprintf "mail-%d" i)
          else transfer client ~from_acct:"alice" ~to_acct:"bob" ~amount:i
    in
    ignore (submit req)
  done
