(** Diffing of two bench JSON reports ([bench/main.exe --json]).

    This is the engine behind [xrepl bench --compare]: parse both
    reports with a minimal stdlib-only JSON reader, flatten each to
    [(dotted path, number)] rows in document order, and render a table
    of the deltas that exceed a noise threshold, marking regressions by
    metric direction.  Paths present in only one report render with
    [n/a] in the missing column instead of being dropped, so a metric
    that disappears between two runs is visible in the diff. *)

module Json : sig
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  val parse : string -> t
  (** Objects, arrays, strings, numbers, booleans, null; no unicode
      unescaping (the reports are ASCII).  Raises {!Parse_error} on
      malformed input, including trailing garbage. *)

  val flatten : t -> (string * float) list
  (** Numeric leaves as [(dotted path, value)] rows, depth-first in
      document order.  Booleans flatten to 0/1 so flag flips show up;
      strings and nulls are skipped. *)
end

val metric_direction : string -> [ `Higher_better | `Lower_better | `Unjudged ]
(** Is a larger value of this metric better, worse, or unjudged?
    Matched on the path's leaf name, schema-free. *)

type summary = {
  compared : int;  (** paths present in both reports *)
  shown : int;  (** deltas at or over the threshold *)
  regressions : int;  (** shown deltas in the wrong direction *)
  only_a : int;  (** paths present only in the first report *)
  only_b : int;  (** paths present only in the second report *)
}

val diff :
  ppf:Format.formatter ->
  ?threshold:float ->
  name_a:string ->
  name_b:string ->
  Json.t ->
  Json.t ->
  summary
(** Render the comparison table for two parsed reports onto [ppf] and
    return the counts.  [threshold] (default 2.0) is the relative
    change in percent below which a delta is considered noise and not
    shown.  One-sided paths always print, with [n/a] in the column of
    the report that lacks them. *)
