(* Bench-report diffing: the engine behind [xrepl bench --compare].
   Everything renders onto a caller-supplied formatter so tests can
   capture the table without touching stdout. *)

(* A minimal JSON reader (stdlib only), just enough for the bench
   harness's own output: objects, arrays, strings, numbers, booleans,
   null.  No unicode unescaping — the reports are ASCII. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  exception Parse_error of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos))
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      if peek () = Some c then advance ()
      else fail (Printf.sprintf "expected '%c'" c)
    in
    let literal lit v =
      let l = String.length lit in
      if !pos + l <= n && String.sub s !pos l = lit then begin
        pos := !pos + l;
        v
      end
      else fail ("expected " ^ lit)
    in
    let string_body () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some 'n' ->
                Buffer.add_char b '\n';
                advance ();
                go ()
            | Some 't' ->
                Buffer.add_char b '\t';
                advance ();
                go ()
            | Some 'r' ->
                Buffer.add_char b '\r';
                advance ();
                go ()
            | Some 'u' ->
                (* Keep the escape verbatim; paths never contain these. *)
                Buffer.add_string b "\\u";
                advance ();
                go ()
            | Some c ->
                Buffer.add_char b c;
                advance ();
                go ()
            | None -> fail "unterminated escape")
        | Some c ->
            Buffer.add_char b c;
            advance ();
            go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c -> is_num_char c | None -> false) do
        advance ()
      done;
      match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number"
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then begin
            advance ();
            Obj []
          end
          else begin
            let rec fields acc =
              skip_ws ();
              let k = string_body () in
              skip_ws ();
              expect ':';
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  fields ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  List.rev ((k, v) :: acc)
              | _ -> fail "expected ',' or '}'"
            in
            Obj (fields [])
          end
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then begin
            advance ();
            List []
          end
          else begin
            let rec items acc =
              let v = value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  items (v :: acc)
              | Some ']' ->
                  advance ();
                  List.rev (v :: acc)
              | _ -> fail "expected ',' or ']'"
            in
            List (items [])
          end
      | Some '"' -> Str (string_body ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> number ()
      | None -> fail "empty input"
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  (* Flatten to (path, number) rows, depth-first in document order.
     Booleans flatten to 0/1 so "all_ok" flips show up in the diff. *)
  let flatten (j : t) : (string * float) list =
    let rows = ref [] in
    let rec go path = function
      | Null | Str _ -> ()
      | Bool b -> rows := (path, if b then 1.0 else 0.0) :: !rows
      | Num f -> rows := (path, f) :: !rows
      | List xs ->
          List.iteri (fun i x -> go (Printf.sprintf "%s[%d]" path i) x) xs
      | Obj fields ->
          List.iter
            (fun (k, v) -> go (if path = "" then k else path ^ "." ^ k) v)
            fields
    in
    go "" j;
    List.rev !rows
end

(* Is a larger value of this metric better, worse, or unjudged?  Matched
   on the leaf name so the table can mark regressions without a schema. *)
let metric_direction path =
  let leaf =
    match String.rindex_opt path '.' with
    | Some i -> String.sub path (i + 1) (String.length path - i - 1)
    | None -> path
  in
  let has sub =
    let ls = String.length sub and ll = String.length leaf in
    let rec at i = i + ls <= ll && (String.sub leaf i ls = sub || at (i + 1)) in
    at 0
  in
  if
    has "req_per_s" || has "speedup" || has "ok" || has "identical"
    || has "explored"
  then `Higher_better
  else if
    has "latency" || has "wall_s" || has "ns_per_run" || has "violating"
    || has "consensus_per_request"
    || has "wire_messages_per_request"
    || has "msgs_per_request" || has "messages_per_request"
    || has "msgs_per_req" || has "lease_misses" || has "lease_expiries"
    || has "retransmit" || has "drops" || has "minor_words" || has "_s"
  then `Lower_better
  else `Unjudged

type summary = {
  compared : int;
  shown : int;
  regressions : int;
  only_a : int;
  only_b : int;
}

let diff ~ppf ?(threshold = 2.0) ~name_a ~name_b ja jb =
  let fa = Json.flatten ja and fb = Json.flatten jb in
  let tb = Hashtbl.create 256 in
  List.iter (fun (k, v) -> Hashtbl.replace tb k v) fb;
  let sa = Hashtbl.create 256 in
  List.iter (fun (k, _) -> Hashtbl.replace sa k ()) fa;
  let regressions = ref 0 and shown = ref 0 and compared = ref 0 in
  let only_a = ref 0 and only_b = ref 0 in
  Format.fprintf ppf "%-58s %12s %12s %9s@." "metric" name_a name_b "delta";
  let show path va vb =
    let delta_pct =
      if va = 0.0 then if vb = 0.0 then 0.0 else Float.infinity
      else (vb -. va) /. Float.abs va *. 100.0
    in
    if Float.abs delta_pct >= threshold then begin
      incr shown;
      let verdict =
        match metric_direction path with
        | `Higher_better when delta_pct < 0.0 -> " REGRESSION"
        | `Lower_better when delta_pct > 0.0 -> " REGRESSION"
        | `Higher_better | `Lower_better -> " improved"
        | `Unjudged -> ""
      in
      if verdict = " REGRESSION" then incr regressions;
      Format.fprintf ppf "%-58s %12.4g %12.4g %+8.1f%%%s@." path va vb
        delta_pct verdict
    end
  in
  (* A path on one side only is rendered with [n/a] in the missing
     column rather than dropped: a metric vanishing between two runs
     (renamed, or its whole experiment skipped) is itself a finding. *)
  List.iter
    (fun (path, va) ->
      match Hashtbl.find_opt tb path with
      | Some vb ->
          incr compared;
          show path va vb
      | None ->
          incr only_a;
          Format.fprintf ppf "%-58s %12.4g %12s@." path va "n/a")
    fa;
  List.iter
    (fun (path, vb) ->
      if not (Hashtbl.mem sa path) then begin
        incr only_b;
        Format.fprintf ppf "%-58s %12s %12.4g@." path "n/a" vb
      end)
    fb;
  Format.fprintf ppf
    "@.%d numeric paths compared, %d over the %.1f%% threshold, %d \
     regressions@."
    !compared !shown threshold !regressions;
  {
    compared = !compared;
    shown = !shown;
    regressions = !regressions;
    only_a = !only_a;
    only_b = !only_b;
  }
