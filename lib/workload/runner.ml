open Xability

type spec = {
  seed : int;
  env_config : Xsm.Environment.config;
  service_config : Xreplication.Service.config;
  crashes : (int * int) list;
  client_crash_at : int option;
  noise : (float * int * int) option;
  time_limit : int;
  quiesce_grace : int;
  clients : int;  (* closed-loop client processes *)
  inflight : int;  (* concurrent lanes (outstanding requests) per client *)
}

let default_spec =
  {
    seed = 42;
    env_config = Xsm.Environment.default_config;
    service_config = Xreplication.Service.default_config;
    crashes = [];
    client_crash_at = None;
    noise = None;
    time_limit = 1_000_000;
    quiesce_grace = 8_000;
    clients = 1;
    inflight = 1;
  }

type submission = { req : Xsm.Request.t; reply : Value.t; latency : int }

type result = {
  completed : bool;
  end_time : int;
  work_end_time : int;
  submissions : submission list;
  report : Checker.report;
  r4_ok : bool;
  r4_violations : string list;
  reply_mismatches : string list;
  env_violations : string list;
  duplicate_effects : int;
  engine_errors : (int * string * string) list;
  totals : Xreplication.Service.totals;
  history_length : int;
  false_suspicions : int;
  rounds_per_request : float;
  shard_reports : (int * Checker.report) list;
      (* per-shard projection verdicts of a sharded run ([] otherwise);
         [report] is then their conjunction (Checker.compose) *)
}

let ok r =
  r.completed && r.report.Checker.ok && r.r4_ok
  && r.reply_mismatches = []
  && r.env_violations = []
  && r.engine_errors = []
  && r.duplicate_effects = 0

let failures r =
  (if r.completed then [] else [ "workload did not complete" ])
  @ (if r.report.Checker.ok then []
     else List.map (fun v -> "R3: " ^ v) r.report.Checker.violations)
  @ List.map (fun v -> "R4: " ^ v) r.r4_violations
  @ List.map (fun v -> "reply: " ^ v) r.reply_mismatches
  @ List.map (fun v -> "env: " ^ v) r.env_violations
  @ List.map
      (fun (t, f, e) -> Printf.sprintf "fiber error @%d in %s: %s" t f e)
      r.engine_errors
  @
  if r.duplicate_effects = 0 then []
  else [ Printf.sprintf "duplicate effects: %d" r.duplicate_effects ]

let run ~spec ?prepare ?(aborted = fun () -> false) ?cache ~setup ~workload () =
  let n_clients = max 1 spec.clients in
  let n_lanes = max 1 spec.inflight in
  let workers = n_clients * n_lanes in
  let spec =
    if n_clients <= spec.service_config.Xreplication.Service.n_clients then
      spec
    else
      {
        spec with
        service_config =
          { spec.service_config with Xreplication.Service.n_clients };
      }
  in
  let eng = Xsim.Engine.create ~seed:spec.seed ~trace_enabled:false () in
  let env = Xsm.Environment.create eng ~config:spec.env_config () in
  (match prepare with Some f -> f eng env | None -> ());
  let srv = setup env in
  let svc = Xreplication.Service.create eng env spec.service_config in
  let client = Xreplication.Service.client svc 0 in
  let submissions_rev = ref [] in
  let issued_rev = ref [] in
  let done_iv = Xsim.Ivar.create () in
  let submit_on client req =
    issued_rev := req :: !issued_rev;
    let t0 = Xsim.Engine.now eng in
    let reply = Xreplication.Client.submit_until_success client req in
    submissions_rev :=
      { req; reply; latency = Xsim.Engine.now eng - t0 } :: !submissions_rev;
    reply
  in
  let submit = submit_on client in
  if workers = 1 then
    Xsim.Engine.spawn eng
      ~proc:(Xreplication.Client.proc client)
      ~name:"workload"
      (fun () ->
        workload srv client submit;
        Xsim.Ivar.fill done_iv ())
  else begin
    (* Closed loop: [clients] client processes, each driving [inflight]
       concurrent lanes of the workload.  The run completes when every
       lane has. *)
    let remaining = ref workers in
    for c = 0 to n_clients - 1 do
      let cl = Xreplication.Service.client svc c in
      for k = 0 to n_lanes - 1 do
        Xsim.Engine.spawn eng
          ~proc:(Xreplication.Client.proc cl)
          ~name:(Printf.sprintf "workload%d.%d" c k)
          (fun () ->
            workload srv cl (submit_on cl);
            decr remaining;
            if !remaining = 0 then Xsim.Ivar.fill done_iv ())
      done
    done
  end;
  List.iter
    (fun (at, idx) ->
      Xsim.Engine.schedule eng ~delay:at (fun () ->
          Xreplication.Service.kill_replica svc idx))
    spec.crashes;
  (match spec.client_crash_at with
  | Some at ->
      Xsim.Engine.schedule eng ~delay:at (fun () ->
          Xreplication.Service.kill_client svc 0)
  | None -> ());
  (match (spec.noise, Xreplication.Service.oracle svc) with
  | Some (probability, duration, until), Some o ->
      Xdetect.Oracle.enable_noise o ~probability ~duration ~until ()
  | _ -> ());
  (* Drive until the workload completes (or the hard limit). *)
  let work_end = ref 0 in
  Xsim.Ivar.watch done_iv (fun () ->
      work_end := Xsim.Engine.now eng;
      Xsim.Engine.request_stop eng;
      true);
  Xsim.Engine.run ~limit:spec.time_limit eng;
  (* Quiesce: give cleaners and in-flight finalizations time to settle so
     the final history is not cut mid-action. *)
  let deadline =
    min spec.time_limit (Xsim.Engine.now eng + spec.quiesce_grace)
  in
  let rec quiesce () =
    let next = min deadline (Xsim.Engine.now eng + 500) in
    if (not (aborted ())) && Xsim.Engine.now eng < next then begin
      Xsim.Engine.run ~limit:next eng;
      if Xsm.Environment.in_flight env > 0 && Xsim.Engine.now eng < deadline
      then quiesce ()
      else if (not (aborted ())) && Xsim.Engine.now eng < deadline then begin
        (* One more slice: a cleaner may be between consensus and its
           finalization actions. *)
        Xsim.Engine.run ~limit:(min deadline (Xsim.Engine.now eng + 500)) eng;
        if Xsm.Environment.in_flight env > 0 && Xsim.Engine.now eng < deadline
        then quiesce ()
      end
    end
  in
  quiesce ();
  let completed = Xsim.Ivar.is_full done_iv in
  let issued = List.rev !issued_rev in
  let submissions = List.rev !submissions_rev in
  let history = Xsm.Environment.history env in
  let kinds = Xsm.Environment.kind_of env in
  let expected = List.map (Xsm.Environment.checker_expected env) issued in
  let check exp =
    (* Concurrent lanes have no per-client sequential order to check. *)
    Checker.check ~kinds ~logical_of:Xsm.Request.logical_of_env_iv
      ~round_of:Xsm.Request.round_of_env_iv ~engine:`Hybrid
      ~check_order:(workers = 1) ?cache ~expected:exp history
  in
  let report =
    let full = check expected in
    if full.Checker.ok || completed then full
    else
      (* Client crashed: also accept the history without the last issued
         request, provided that request left no events (at-most-once). *)
      match List.rev expected with
      | last :: rest_rev ->
          let without_last = check (List.rev rest_rev) in
          let last_untouched =
            List.for_all
              (fun (g : Checker.group_result) ->
                not
                  (g.expected.Checker.action = last.Checker.action
                  && Value.equal g.expected.Checker.logical
                       last.Checker.logical)
                || g.events = 0)
              full.Checker.groups
          in
          if without_last.Checker.ok && last_untouched then without_last
          else full
      | [] -> full
  in
  let r4_violations =
    List.filter_map
      (fun s ->
        let possible = Xsm.Environment.possible_replies env s.req in
        if List.exists (Value.equal s.reply) possible then None
        else
          Some
            (Printf.sprintf "reply %s to %s not in PossibleReply {%s}"
               (Value.to_string s.reply) (Xsm.Request.key s.req)
               (String.concat ", " (List.map Value.to_string possible))))
      submissions
  in
  (* The reply the client accepted must be the output the request's effect
     actually settled on (the surviving execution in the reduced history).
     R4 alone admits any member of PossibleReply; a protocol that replies
     before outcome-consensus can return a value from a round that was
     later aborted — still a possible reply, but of no surviving effect. *)
  let reply_mismatches =
    List.filter_map
      (fun s ->
        let exp = Xsm.Environment.checker_expected env s.req in
        let settled =
          List.find_map
            (fun (g : Checker.group_result) ->
              if
                g.expected.Checker.action = exp.Checker.action
                && Value.equal g.expected.Checker.logical exp.Checker.logical
              then g.output
              else None)
            report.Checker.groups
        in
        match settled with
        | Some v when not (Value.equal s.reply v) ->
            Some
              (Printf.sprintf "client accepted %s for %s but its effect settled on %s"
                 (Value.to_string s.reply) (Xsm.Request.key s.req)
                 (Value.to_string v))
        | _ -> None)
      submissions
  in
  let false_suspicions =
    match
      (Xreplication.Service.oracle svc, Xreplication.Service.heartbeat svc)
    with
    | Some o, _ -> Xdetect.Oracle.false_suspicions o
    | None, Some hb -> Xdetect.Heartbeat.false_suspicions hb
    | None, None -> 0
  in
  let totals = Xreplication.Service.totals svc in
  (* Modelled substrate messages per served request, in milli-units so the
     integer gauge keeps two decimals (4000 = 4.0 msgs/request). *)
  if Xobs.enabled () then
    Xobs.Gauge.set
      (Xobs.gauge "coord.msgs_per_request")
      (totals.Xreplication.Service.coord_msgs
       * 1000
       / max 1 totals.Xreplication.Service.replies_sent);
  let result =
    {
      completed;
      end_time = Xsim.Engine.now eng;
      work_end_time = (if completed then !work_end else Xsim.Engine.now eng);
      submissions;
      report;
      r4_ok = r4_violations = [];
      r4_violations;
      reply_mismatches;
      env_violations = Xsm.Environment.violations env;
      duplicate_effects = Xsm.Environment.duplicate_effects env;
      engine_errors =
        List.map
          (fun (t, f, e) -> (t, f, Printexc.to_string e))
          (Xsim.Engine.errors eng);
      totals;
      history_length = History.length history;
      false_suspicions;
      rounds_per_request =
        Stats.ratio totals.Xreplication.Service.rounds_owned
          (max 1 (List.length issued));
      shard_reports = [];
    }
  in
  (result, srv)

(* ------------------------------------------------------------------ *)
(* Sharded runs.  Same closed-loop discipline as [run], but the load is
   per shard — [spec.clients] sessions x [spec.inflight] lanes on every
   shard — and verification applies the paper's section-4 composition
   theorem: the global history is projected per shard by the same pure
   key function the router used online, each projection checked
   independently, verdicts conjoined (Checker.compose). *)

let run_sharded ~spec ?prepare ?(aborted = fun () -> false) ?cache ~setup
    ~workload () =
  let n_sessions = max 1 spec.clients in
  let n_lanes = max 1 spec.inflight in
  let spec =
    if n_sessions <= spec.service_config.Xreplication.Service.n_clients then
      spec
    else
      {
        spec with
        service_config =
          {
            spec.service_config with
            Xreplication.Service.n_clients = n_sessions;
          };
      }
  in
  let n_shards = max 1 spec.service_config.Xreplication.Service.shards in
  let eng = Xsim.Engine.create ~seed:spec.seed ~trace_enabled:false () in
  let env = Xsm.Environment.create eng ~config:spec.env_config () in
  (match prepare with Some f -> f eng env | None -> ());
  let srv = setup env in
  let d = Xshard.Deployment.create eng env spec.service_config in
  let done_iv = Xsim.Ivar.create () in
  let sessions =
    Array.init n_shards (fun shard ->
        Array.init n_sessions (fun client ->
            Xshard.Deployment.session d ~shard ~client))
  in
  let remaining = ref (n_shards * n_sessions * n_lanes) in
  Array.iteri
    (fun shard row ->
      Array.iteri
        (fun c sess ->
          for k = 0 to n_lanes - 1 do
            Xsim.Engine.spawn eng
              ~proc:(Xshard.Deployment.session_proc sess)
              ~name:(Printf.sprintf "workload.s%d.%d.%d" shard c k)
              (fun () ->
                workload srv d sess;
                decr remaining;
                if !remaining = 0 then Xsim.Ivar.fill done_iv ())
          done)
        row)
    sessions;
  (* Crash schedule: [idx] is the flat index shard * n_replicas + r. *)
  List.iter
    (fun (at, idx) ->
      Xsim.Engine.schedule eng ~delay:at (fun () ->
          Xshard.Deployment.kill_replica d idx))
    spec.crashes;
  (match spec.client_crash_at with
  | Some at ->
      Xsim.Engine.schedule eng ~delay:at (fun () ->
          Xshard.Deployment.kill_session d ~shard:0 ~client:0)
  | None -> ());
  (match spec.noise with
  | Some (probability, duration, until) ->
      for s = 0 to n_shards - 1 do
        match Xreplication.Service.oracle (Xshard.Deployment.group d s) with
        | Some o -> Xdetect.Oracle.enable_noise o ~probability ~duration ~until ()
        | None -> ()
      done
  | None -> ());
  let work_end = ref 0 in
  Xsim.Ivar.watch done_iv (fun () ->
      work_end := Xsim.Engine.now eng;
      Xsim.Engine.request_stop eng;
      true);
  Xsim.Engine.run ~limit:spec.time_limit eng;
  let deadline =
    min spec.time_limit (Xsim.Engine.now eng + spec.quiesce_grace)
  in
  let rec quiesce () =
    let next = min deadline (Xsim.Engine.now eng + 500) in
    if (not (aborted ())) && Xsim.Engine.now eng < next then begin
      Xsim.Engine.run ~limit:next eng;
      if Xsm.Environment.in_flight env > 0 && Xsim.Engine.now eng < deadline
      then quiesce ()
      else if (not (aborted ())) && Xsim.Engine.now eng < deadline then begin
        Xsim.Engine.run ~limit:(min deadline (Xsim.Engine.now eng + 500)) eng;
        if Xsm.Environment.in_flight env > 0 && Xsim.Engine.now eng < deadline
        then quiesce ()
      end
    end
  in
  quiesce ();
  let completed = Xsim.Ivar.is_full done_iv in
  let issued = Xshard.Deployment.issued d in
  let submissions =
    List.map
      (fun (s : Xshard.Deployment.submission) ->
        {
          req = s.Xshard.Deployment.req;
          reply = s.Xshard.Deployment.reply;
          latency = s.Xshard.Deployment.latency;
        })
      (Xshard.Deployment.submissions d)
  in
  let history = Xsm.Environment.history env in
  let kinds = Xsm.Environment.kind_of env in
  let expected = List.map (Xsm.Environment.checker_expected env) issued in
  let compose exp =
    (* Concurrent per-shard sessions induce no global request order. *)
    Checker.compose ~kinds ~logical_of:Xsm.Request.logical_of_env_iv
      ~round_of:Xsm.Request.round_of_env_iv ~engine:`Hybrid ~check_order:false
      ?cache
      ~shard_of:(Xshard.Deployment.shard_of_expected d)
      ~expected:exp history
  in
  let composed =
    let full = compose expected in
    if full.Checker.combined.Checker.ok || completed then full
    else
      (* The crashed session's last issued request may legitimately have
         no trace (at-most-once): accept the history without it. *)
      match
        List.rev (Xshard.Deployment.session_issued sessions.(0).(0))
      with
      | last_req :: _ ->
          let last = Xsm.Environment.checker_expected env last_req in
          let without_last =
            compose
              (List.filter
                 (fun (e : Checker.expected) ->
                   not
                     (e.Checker.action = last.Checker.action
                     && Value.equal e.Checker.logical last.Checker.logical))
                 expected)
          in
          let last_untouched =
            List.for_all
              (fun (g : Checker.group_result) ->
                not
                  (g.expected.Checker.action = last.Checker.action
                  && Value.equal g.expected.Checker.logical
                       last.Checker.logical)
                || g.events = 0)
              full.Checker.combined.Checker.groups
          in
          if without_last.Checker.combined.Checker.ok && last_untouched then
            without_last
          else full
      | [] -> full
  in
  let report = composed.Checker.combined in
  let r4_violations =
    List.filter_map
      (fun s ->
        let possible = Xsm.Environment.possible_replies env s.req in
        if List.exists (Value.equal s.reply) possible then None
        else
          Some
            (Printf.sprintf "reply %s to %s not in PossibleReply {%s}"
               (Value.to_string s.reply) (Xsm.Request.key s.req)
               (String.concat ", " (List.map Value.to_string possible))))
      submissions
  in
  let reply_mismatches =
    List.filter_map
      (fun s ->
        let exp = Xsm.Environment.checker_expected env s.req in
        let settled =
          List.find_map
            (fun (g : Checker.group_result) ->
              if
                g.expected.Checker.action = exp.Checker.action
                && Value.equal g.expected.Checker.logical exp.Checker.logical
              then g.output
              else None)
            report.Checker.groups
        in
        match settled with
        | Some v when not (Value.equal s.reply v) ->
            Some
              (Printf.sprintf
                 "client accepted %s for %s but its effect settled on %s"
                 (Value.to_string s.reply) (Xsm.Request.key s.req)
                 (Value.to_string v))
        | _ -> None)
      submissions
  in
  let false_suspicions =
    let per_group s =
      let g = Xshard.Deployment.group d s in
      match
        (Xreplication.Service.oracle g, Xreplication.Service.heartbeat g)
      with
      | Some o, _ -> Xdetect.Oracle.false_suspicions o
      | None, Some hb -> Xdetect.Heartbeat.false_suspicions hb
      | None, None -> 0
    in
    let acc = ref 0 in
    for s = 0 to n_shards - 1 do
      acc := !acc + per_group s
    done;
    !acc
  in
  let totals = (Xshard.Deployment.totals d).Xshard.Deployment.service in
  if Xobs.enabled () then
    Xobs.Gauge.set
      (Xobs.gauge "coord.msgs_per_request")
      (totals.Xreplication.Service.coord_msgs
       * 1000
       / max 1 totals.Xreplication.Service.replies_sent);
  let result =
    {
      completed;
      end_time = Xsim.Engine.now eng;
      work_end_time = (if completed then !work_end else Xsim.Engine.now eng);
      submissions;
      report;
      r4_ok = r4_violations = [];
      r4_violations;
      reply_mismatches;
      env_violations = Xsm.Environment.violations env;
      duplicate_effects = Xsm.Environment.duplicate_effects env;
      engine_errors =
        List.map
          (fun (t, f, e) -> (t, f, Printexc.to_string e))
          (Xsim.Engine.errors eng);
      totals;
      history_length = History.length history;
      false_suspicions;
      rounds_per_request =
        Stats.ratio totals.Xreplication.Service.rounds_owned
          (max 1 (List.length issued));
      shard_reports = composed.Checker.per_shard;
    }
  in
  (result, srv, d)

let timed_pp ppf r =
  Format.fprintf ppf
    "completed=%b x-able=%b r4=%b dup=%d rounds/req=%.2f hist=%d end=%d"
    r.completed r.report.Checker.ok r.r4_ok r.duplicate_effects
    r.rounds_per_request r.history_length r.end_time
