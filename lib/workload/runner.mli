(** Scenario runner: build a simulated deployment of the paper's protocol,
    drive a client workload through it under a fault schedule, let the
    system quiesce, and verify the paper's requirements R1–R4 on the
    resulting run.

    Verification performed on every run:
    - {b R2/liveness}: every workload request received a reply (the run
      [completed]) unless the client was crashed on purpose;
    - {b R3/x-ability}: the environment history reduces to a failure-free
      history of the submitted request sequence ({!Xability.Checker});
    - {b R4/possible replies}: every reply the client accepted is in the
      environment's PossibleReply set for that request;
    - environment-level exactly-once accounting: net effects per request,
      duplicate effects, environment violations;
    - simulator hygiene: no fiber died with an uncaught exception.

    (R1, idempotence of [submit], is exercised separately by tests that
    force client retries and is implied by R3 holding under retries.) *)

type spec = {
  seed : int;
  env_config : Xsm.Environment.config;
  service_config : Xreplication.Service.config;
  crashes : (int * int) list;  (** (virtual time, replica index) *)
  client_crash_at : int option;
  noise : (float * int * int) option;
      (** oracle-detector false-suspicion noise: (probability per poll,
          suspicion duration, active until) *)
  time_limit : int;  (** hard stop for the whole run *)
  quiesce_grace : int;  (** extra time after the workload completes *)
  clients : int;
      (** closed-loop client processes (default 1); when > 1 the workload
          is run once per client × lane, and the R3 check drops the
          per-client sequential-order requirement ([check_order:false],
          there being no single issue order to check) *)
  inflight : int;  (** concurrent lanes per client (default 1) *)
}

val default_spec : spec

(** What the client workload did: each submitted request with its reply
    and observed latency. *)
type submission = {
  req : Xsm.Request.t;
  reply : Xability.Value.t;
  latency : int;
}

type result = {
  completed : bool;  (** the workload fiber ran to completion *)
  end_time : int;
  work_end_time : int;
      (** virtual time the last workload lane finished (excludes the
          quiesce grace) — the makespan throughput is measured against *)
  submissions : submission list;
  report : Xability.Checker.report;  (** R3 verdict over the env history *)
  r4_ok : bool;
  r4_violations : string list;
  reply_mismatches : string list;
      (** replies the client accepted that differ from the output the
          request's effect settled on in the reduced history — catches
          protocols that reply before the outcome is agreed *)
  env_violations : string list;
  duplicate_effects : int;
  engine_errors : (int * string * string) list;
  totals : Xreplication.Service.totals;
  history_length : int;
  false_suspicions : int;
  rounds_per_request : float;  (** mean rounds of owner-agreement used *)
  shard_reports : (int * Xability.Checker.report) list;
      (** a sharded run's per-shard projection verdicts (ascending shard
          id); [report] is then their conjunction per the section-4
          composition theorem ({!Xability.Checker.compose}).  [[]] for
          single-group runs *)
}

val ok : result -> bool
(** All checks green: completed, R3, R4, no violations, no fiber errors. *)

val failures : result -> string list
(** Human-readable list of everything that went wrong (empty iff [ok]). *)

val run :
  spec:spec ->
  ?prepare:(Xsim.Engine.t -> Xsm.Environment.t -> unit) ->
  ?aborted:(unit -> bool) ->
  ?cache:Xability.Checker.cache ->
  setup:(Xsm.Environment.t -> 'srv) ->
  workload:
    ('srv ->
    Xreplication.Client.t ->
    (Xsm.Request.t -> Xability.Value.t) ->
    unit) ->
  unit ->
  result * 'srv
(** [setup] registers services on the environment and returns whatever
    handle the workload needs.  [workload srv client submit] runs inside
    the client's fiber; it must issue requests through the provided
    [submit], which records each request (defining the R3 expectation,
    in issue order) and its reply latency.

    [prepare eng env] runs before any service is registered — the hook a
    schedule explorer uses to install a scheduling chooser on the engine
    and an online monitor on the environment.  [aborted] is polled
    between simulation slices; once it returns [true] the run skips the
    remaining quiesce work (the monitor should also call
    {!Xsim.Engine.request_stop} to end the current slice early).
    [cache] is handed to the R3 checker ({!Xability.Checker.create_cache});
    a schedule explorer passes one cache across its many runs so the
    reduction searches share memo tables.

    If the spec crashes the client, the workload fiber dies silently;
    per the paper's at-most-once discussion (section 4), the checker
    then also accepts the history in which the {e last} issued request
    was never processed. *)

val run_sharded :
  spec:spec ->
  ?prepare:(Xsim.Engine.t -> Xsm.Environment.t -> unit) ->
  ?aborted:(unit -> bool) ->
  ?cache:Xability.Checker.cache ->
  setup:(Xsm.Environment.t -> 'srv) ->
  workload:('srv -> Xshard.Deployment.t -> Xshard.Deployment.session -> unit) ->
  unit ->
  result * 'srv * Xshard.Deployment.t
(** Sharded variant of {!run}: builds an {!Xshard.Deployment} of
    [spec.service_config.shards] replica groups over one shared wire and
    drives a {e per-shard} closed loop — [spec.clients] sessions ×
    [spec.inflight] lanes on {e every} shard, each lane running
    [workload srv deployment session] on its session's process
    (issue requests via {!Xshard.Deployment.submit} /
    {!Xshard.Deployment.submit_cross}).

    Crash indices in [spec.crashes] are flat: [shard * n_replicas + r].
    [client_crash_at] crashes shard 0's session 0.  [noise] drives every
    shard's oracle.

    R3 is verified with {!Xability.Checker.compose}: the global history
    is projected per shard by the same pure key-partition function the
    router used online, each projection checked independently, and the
    verdicts conjoined — the paper's section-4 locality/composition
    theorem, executed.  [result.shard_reports] keeps the per-shard
    verdicts; [result.report] is the conjunction. *)

val timed_pp : Format.formatter -> result -> unit
(** One-line summary, for experiment tables. *)
