let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let mean_int xs = mean (List.map float_of_int xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

let percentile p = function
  | [] -> 0.0
  | xs ->
      let sorted = List.sort Float.compare xs in
      let n = List.length sorted in
      let rank =
        int_of_float (ceil (p *. float_of_int n)) |> max 1 |> min n
      in
      List.nth sorted (rank - 1)

let min_max = function
  | [] -> (0.0, 0.0)
  | x :: xs -> List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den
