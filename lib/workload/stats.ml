let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let mean_int xs = mean (List.map float_of_int xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

let sorted_of_list xs =
  let a = Array.of_list xs in
  Array.sort Float.compare a;
  a

(* Nearest-rank percentile on an already-sorted array.  The empty
   distribution has no percentiles: return nan rather than a fake 0.0
   (or an out-of-bounds raise); a singleton's every percentile is its
   only element (rank clamps to 1). *)
let percentile_sorted p a =
  let n = Array.length a in
  if n = 0 then Float.nan
  else
    let rank = int_of_float (ceil (p *. float_of_int n)) |> max 1 |> min n in
    a.(rank - 1)

let percentile p xs = percentile_sorted p (sorted_of_list xs)

type summary = { n : int; mean : float; p50 : float; p95 : float; p99 : float }

let summarize xs =
  let a = sorted_of_list xs in
  {
    n = Array.length a;
    mean = mean xs;
    p50 = percentile_sorted 0.50 a;
    p95 = percentile_sorted 0.95 a;
    p99 = percentile_sorted 0.99 a;
  }

let p50 xs = percentile 0.50 xs
let p95 xs = percentile 0.95 xs
let p99 xs = percentile 0.99 xs

let min_max = function
  | [] -> (0.0, 0.0)
  | x :: xs -> List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den
