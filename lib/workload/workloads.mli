(** Standard workloads over the stock services, shared by tests,
    examples, and the benchmark harness. *)

open Xability

type services = {
  mailer : Xsm.Services.Mailer.t;
  bank : Xsm.Services.Bank.t;
  booking : Xsm.Services.Booking.t;
  kv : Xsm.Services.Kv.t;
}

val setup_all : Xsm.Environment.t -> services
(** Register a mailer, a bank (alice: 10_000, bob: 0), a 64-seat booking
    service, and a key-value store. *)

(** Request constructors (fresh request ids from the client). *)

val send : Xreplication.Client.t -> body:string -> Xsm.Request.t
val transfer :
  Xreplication.Client.t -> from_acct:string -> to_acct:string -> amount:int ->
  Xsm.Request.t
val reserve : Xreplication.Client.t -> passenger:string -> Xsm.Request.t
val kv_put : Xreplication.Client.t -> key:string -> value:Value.t -> Xsm.Request.t
val kv_get : Xreplication.Client.t -> key:string -> Xsm.Request.t

type mix = Idempotent_only | Undoable_only | Mixed

val sharded_mix :
  ?undoable:bool ->
  n:int ->
  cross_every:int ->
  Xshard.Deployment.t ->
  Xshard.Deployment.session ->
  unit
(** Closed-loop load for one sharded session: [n] requests with keys
    pinned to the session's home shard, every [cross_every]-th replaced
    by a cross-shard kv_put pair (home shard + clockwise neighbour)
    submitted via {!Xshard.Deployment.submit_cross}.  [undoable]
    (default true) interleaves home-shard seat reservations; disable it
    for large benches (the stock booking service has 64 seats). *)

val sequence :
  mix -> n:int ->
  Xreplication.Client.t ->
  (Xsm.Request.t -> Value.t) ->
  unit
(** Issue [n] requests sequentially: mail sends (idempotent), bank
    transfers (undoable), or an alternation. *)
