(** Small numeric helpers for experiment reporting. *)

val mean : float list -> float
(** 0.0 on the empty list. *)

val mean_int : int list -> float

val stddev : float list -> float

val percentile : float -> float list -> float
(** [percentile 0.5 xs] is the median (nearest-rank on the sorted list);
    0.0 on the empty list. *)

val min_max : float list -> float * float

val ratio : int -> int -> float
(** [ratio num den] with 0.0 for a zero denominator. *)
