(** Small numeric helpers for experiment reporting. *)

val mean : float list -> float
(** 0.0 on the empty list. *)

val mean_int : int list -> float

val stddev : float list -> float

val sorted_of_list : float list -> float array
(** Fresh sorted array of the elements. *)

val percentile_sorted : float -> float array -> float
(** Nearest-rank percentile of an {e already sorted} array; [nan] on
    the empty array (the empty distribution has no percentiles), the
    sole element on a singleton.  Sort once with {!sorted_of_list} and
    reuse the array when extracting several percentiles. *)

val percentile : float -> float list -> float
(** [percentile 0.5 xs] is the median (nearest-rank on the sorted list);
    [nan] on the empty list, the sole element on a singleton.  Sorts per
    call — prefer {!summarize} or {!percentile_sorted} for repeated
    queries on the same data. *)

val p50 : float list -> float

val p95 : float list -> float

val p99 : float list -> float

type summary = { n : int; mean : float; p50 : float; p95 : float; p99 : float }

val summarize : float list -> summary
(** All of the above in one pass over one sorted copy. *)

val min_max : float list -> float * float

val ratio : int -> int -> float
(** [ratio num den] with 0.0 for a zero denominator. *)
