(** Zero-dependency observability: typed counters, gauges, log-scaled
    histograms, and sim-time span tracing, behind a global [enabled] flag
    that compiles the instrumentation down to a no-op when off.

    Design constraints (see DESIGN.md "Observability"):

    - {b Determinism.} All metric payloads are integers derived from the
      simulation (virtual times, counts, sizes) — never wall-clock — so
      snapshots of the same seeded run are byte-identical regardless of
      host speed or [JOBS] parallelism.
    - {b Domain-locality.} The metric registry is per-domain
      ([Domain.DLS]), so pool workers never contend or race; a sweep
      captures one {!Snapshot.t} per run and merges them in schedule
      order, which is itself independent of pool size.
    - {b Gating.} Instrumented modules fetch their handles once at
      creation time when [enabled ()] is true and store [None] otherwise;
      the per-event cost when disabled is a single immediate match. *)

(** {1 Global switch} *)

val enabled : unit -> bool
(** [enabled ()] is the current state of the global instrumentation
    switch (an [Atomic.t]; default [false]). Modules consult it when
    creating handles; hot paths guard on the handle option instead. *)

val set_enabled : bool -> unit
(** Flip the global switch. Takes effect for subsequently created
    components (and for call-sites that re-check per call, such as
    {!section-registry} lookups in [Xability.Reduction]). *)

(** {1 Instruments}

    All instruments are cheap mutable cells living in the
    current domain's registry. Values are integers; negative inputs are
    clamped to [0] (metric payloads are counts, sizes, and sim-time
    durations, all naturally non-negative). *)

module Counter : sig
  type t
  (** A monotonically increasing event count. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t
  (** A sampled level (e.g. heap depth): remembers the last set value
      and the maximum ever set. *)

  val set : t -> int -> unit
  val value : t -> int
  (** Last value set ([0] if never set). *)

  val max_value : t -> int
  (** Maximum value ever set ([0] if never set). *)
end

module Histogram : sig
  type t
  (** A log₂-bucketed distribution of non-negative integers: bucket 0
      holds exact zeros and bucket [i ≥ 1] holds values in
      [\[2{^i-1}, 2{^i}-1\]]. Percentiles are recovered from bucket
      lower bounds via [Xworkload.Stats.percentile] by callers (the
      registry itself stays dependency-free). *)

  val record : t -> int -> unit
  val count : t -> int
  val sum : t -> int
end

module Span : sig
  type t
  (** A family of timed operations keyed by sim-time: each
      [record ~t0 ~t1] folds the duration [t1 - t0] into a duration
      histogram and keeps a small ring of recent [(t0, duration)]
      pairs for trace-style inspection. *)

  val record : t -> t0:int -> t1:int -> unit
end

(** {1:registry Registry}

    [counter name] (and friends) get-or-create the named instrument in
    the calling domain's registry; the same name always yields the same
    cell within a domain between {!reset}s. Names are conventionally
    [subsystem.metric] (e.g. ["engine.events_dispatched"]). Registering
    the same name with two different instrument kinds raises
    [Invalid_argument]. *)

val counter : string -> Counter.t
val gauge : string -> Gauge.t
val histogram : string -> Histogram.t
val span : string -> Span.t

val reset : unit -> unit
(** Clear the calling domain's registry. Sweep drivers call this before
    each run so per-run snapshots are independent. *)

(** {1 Snapshots} *)

module Snapshot : sig
  type metric =
    | Counter of int
    | Gauge of { last : int; max : int }
    | Histogram of {
        n : int;
        sum : int;
        min : int;  (** [0] when [n = 0]. *)
        max : int;  (** [0] when [n = 0]. *)
        buckets : (int * int) list;
            (** [(lower_bound, count)], ascending, empty buckets
                omitted. *)
      }
    | Span of {
        n : int;
        total : int;  (** Sum of durations. *)
        min : int;
        max : int;
        buckets : (int * int) list;  (** Duration histogram, as above. *)
        recent : (int * int) list;
            (** Up to 16 recent [(t0, duration)] pairs, oldest first. *)
      }

  type t = (string * metric) list
  (** An immutable, name-sorted copy of a registry. *)

  val empty : t
  val is_empty : t -> bool
  val equal : t -> t -> bool
  val find : t -> string -> metric option

  val merge : t -> t -> t
  (** Pointwise union: counters add; gauge [max]es combine and [last]
      is right-biased (the later run wins); histogram and span buckets
      add bucket-wise with [min]/[max] recombined. Merging with
      {!empty} is the identity, and merging disjoint snapshots
      concatenates them — in particular empty and singleton inputs are
      total, never raising (see test_obs.ml). Associative, with
      name-sorted output. *)

  val representatives : metric -> float array
  (** A sorted array standing in for the recorded distribution — each
      bucket's lower bound repeated [count] times (counters and gauges
      yield their value once) — suitable for
      [Xworkload.Stats.percentile_sorted]. *)

  val to_json : t -> string
  (** One JSON object on one line (JSONL-ready):
      [{"obs":\[{"k":name,"t":kind,...},...\]}]. All payloads are
      integers, so {!of_json} round-trips exactly. *)

  val of_json : string -> t option
  (** Inverse of {!to_json}; [None] on malformed input. *)

  val pp : Format.formatter -> t -> unit
  (** Plain one-line-per-metric rendering (no percentiles; the CLI
      layers those on via [Xworkload.Stats]). *)
end

val snapshot : unit -> Snapshot.t
(** Capture the calling domain's registry, sorted by metric name. *)
