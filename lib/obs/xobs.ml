(* Observability registry. Stdlib only — this library sits below
   lib/core in the dependency order, so it must not pull in fmt/logs. *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let set_enabled v = Atomic.set enabled_flag v

(* Log2 bucketing: bucket 0 = {0}; bucket i>=1 = [2^(i-1), 2^i - 1].
   63 buckets cover the whole non-negative int range. *)
let nbuckets = 63

let bucket_of v =
  if v <= 0 then 0
  else
    let rec msb i v = if v = 0 then i else msb (i + 1) (v lsr 1) in
    min (msb 0 v) (nbuckets - 1)

let bucket_lower i = if i = 0 then 0 else 1 lsl (i - 1)

type hist = {
  mutable h_n : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;
}

let make_hist () =
  { h_n = 0; h_sum = 0; h_min = max_int; h_max = 0; h_buckets = Array.make nbuckets 0 }

let hist_record h v =
  let v = if v < 0 then 0 else v in
  h.h_n <- h.h_n + 1;
  h.h_sum <- h.h_sum + v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_of v in
  h.h_buckets.(i) <- h.h_buckets.(i) + 1

let recent_cap = 16

type spanfam = { s_durs : hist; mutable s_recent : (int * int) list (* oldest first *) }

type metric =
  | M_counter of int ref
  | M_gauge of { mutable g_last : int; mutable g_max : int }
  | M_hist of hist
  | M_span of spanfam

let registry_key : (string, metric) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let registry () = Domain.DLS.get registry_key
let reset () = Hashtbl.reset (registry ())

let get_or_create name make check =
  let reg = registry () in
  match Hashtbl.find_opt reg name with
  | Some m -> (
      match check m with
      | Some x -> x
      | None -> invalid_arg ("Xobs: metric " ^ name ^ " registered with another kind"))
  | None ->
      let m, x = make () in
      Hashtbl.add reg name m;
      x

module Counter = struct
  type t = int ref

  let incr c = Stdlib.incr c
  let add c n = if n > 0 then c := !c + n
  let value c = !c
end

module Gauge = struct
  type t = metric

  let set g v =
    let v = if v < 0 then 0 else v in
    match g with
    | M_gauge g ->
        g.g_last <- v;
        if v > g.g_max then g.g_max <- v
    | _ -> assert false

  let value = function M_gauge g -> g.g_last | _ -> assert false
  let max_value = function M_gauge g -> g.g_max | _ -> assert false
end

module Histogram = struct
  type t = hist

  let record = hist_record
  let count h = h.h_n
  let sum h = h.h_sum
end

module Span = struct
  type t = spanfam

  let record s ~t0 ~t1 =
    let dur = if t1 > t0 then t1 - t0 else 0 in
    hist_record s.s_durs dur;
    let n = List.length s.s_recent in
    let base = if n >= recent_cap then List.tl s.s_recent else s.s_recent in
    s.s_recent <- base @ [ (t0, dur) ]
end

let counter name =
  get_or_create name
    (fun () ->
      let c = ref 0 in
      (M_counter c, c))
    (function M_counter c -> Some c | _ -> None)

let gauge name =
  get_or_create name
    (fun () ->
      let m = M_gauge { g_last = 0; g_max = 0 } in
      (m, m))
    (function M_gauge _ as m -> Some m | _ -> None)

let histogram name =
  get_or_create name
    (fun () ->
      let h = make_hist () in
      (M_hist h, h))
    (function M_hist h -> Some h | _ -> None)

let span name =
  get_or_create name
    (fun () ->
      let s = { s_durs = make_hist (); s_recent = [] } in
      (M_span s, s))
    (function M_span s -> Some s | _ -> None)

module Snapshot = struct
  type metric =
    | Counter of int
    | Gauge of { last : int; max : int }
    | Histogram of {
        n : int;
        sum : int;
        min : int;
        max : int;
        buckets : (int * int) list;
      }
    | Span of {
        n : int;
        total : int;
        min : int;
        max : int;
        buckets : (int * int) list;
        recent : (int * int) list;
      }

  type t = (string * metric) list

  let empty : t = []
  let is_empty (s : t) = s = []
  let equal (a : t) (b : t) = a = b
  let find (s : t) name = List.assoc_opt name s

  let buckets_of_hist h =
    let out = ref [] in
    for i = nbuckets - 1 downto 0 do
      if h.h_buckets.(i) > 0 then out := (bucket_lower i, h.h_buckets.(i)) :: !out
    done;
    !out

  let hist_fields h =
    let min = if h.h_n = 0 then 0 else h.h_min in
    (h.h_n, h.h_sum, min, h.h_max, buckets_of_hist h)

  let merge_buckets a b =
    (* Both ascending by lower bound; sum counts per bound. *)
    let rec go a b =
      match (a, b) with
      | [], r | r, [] -> r
      | (la, ca) :: ta, (lb, cb) :: tb ->
          if la = lb then (la, ca + cb) :: go ta tb
          else if la < lb then (la, ca) :: go ta b
          else (lb, cb) :: go a tb
    in
    go a b

  let merge_minmax n1 mn1 mx1 n2 mn2 mx2 =
    let mn =
      if n1 = 0 then mn2 else if n2 = 0 then mn1 else Stdlib.min mn1 mn2
    in
    (mn, Stdlib.max mx1 mx2)

  let merge_metric a b =
    match (a, b) with
    | Counter x, Counter y -> Counter (x + y)
    | Gauge g1, Gauge g2 -> Gauge { last = g2.last; max = Stdlib.max g1.max g2.max }
    | Histogram h1, Histogram h2 ->
        let min, max = merge_minmax h1.n h1.min h1.max h2.n h2.min h2.max in
        Histogram
          {
            n = h1.n + h2.n;
            sum = h1.sum + h2.sum;
            min;
            max;
            buckets = merge_buckets h1.buckets h2.buckets;
          }
    | Span s1, Span s2 ->
        let min, max = merge_minmax s1.n s1.min s1.max s2.n s2.min s2.max in
        let recent =
          let r = s1.recent @ s2.recent in
          let n = List.length r in
          if n <= recent_cap then r else List.filteri (fun i _ -> i >= n - recent_cap) r
        in
        Span
          {
            n = s1.n + s2.n;
            total = s1.total + s2.total;
            min;
            max;
            buckets = merge_buckets s1.buckets s2.buckets;
            recent;
          }
    | _ ->
        (* Kind clash across snapshots: keep the right operand (latest
           run wins) rather than raise — merge must be total. *)
        b

  let merge (a : t) (b : t) : t =
    let rec go a b =
      match (a, b) with
      | [], r | r, [] -> r
      | (ka, va) :: ta, (kb, vb) :: tb ->
          let c = String.compare ka kb in
          if c = 0 then (ka, merge_metric va vb) :: go ta tb
          else if c < 0 then (ka, va) :: go ta b
          else (kb, vb) :: go a tb
    in
    go a b

  let representatives = function
    | Counter v -> [| float_of_int v |]
    | Gauge g -> [| float_of_int g.last |]
    | Histogram { buckets; _ } | Span { buckets; _ } ->
        let n = List.fold_left (fun acc (_, c) -> acc + c) 0 buckets in
        let a = Array.make (Stdlib.max n 0) 0.0 in
        let i = ref 0 in
        List.iter
          (fun (lo, c) ->
            for _ = 1 to c do
              a.(!i) <- float_of_int lo;
              incr i
            done)
          buckets;
        a

  (* ---- JSON ---- *)

  let escape b s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s

  let add_pairs b pairs =
    Buffer.add_char b '[';
    List.iteri
      (fun i (x, y) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "[%d,%d]" x y))
      pairs;
    Buffer.add_char b ']'

  let to_json (s : t) =
    let b = Buffer.create 256 in
    Buffer.add_string b "{\"obs\":[";
    List.iteri
      (fun i (name, m) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b "{\"k\":\"";
        escape b name;
        Buffer.add_string b "\",";
        (match m with
        | Counter v -> Buffer.add_string b (Printf.sprintf "\"t\":\"c\",\"v\":%d" v)
        | Gauge g ->
            Buffer.add_string b (Printf.sprintf "\"t\":\"g\",\"last\":%d,\"max\":%d" g.last g.max)
        | Histogram h ->
            Buffer.add_string b
              (Printf.sprintf "\"t\":\"h\",\"n\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"b\":" h.n
                 h.sum h.min h.max);
            add_pairs b h.buckets
        | Span sp ->
            Buffer.add_string b
              (Printf.sprintf "\"t\":\"s\",\"n\":%d,\"total\":%d,\"min\":%d,\"max\":%d,\"b\":" sp.n
                 sp.total sp.min sp.max);
            add_pairs b sp.buckets;
            Buffer.add_string b ",\"r\":";
            add_pairs b sp.recent);
        Buffer.add_char b '}')
      s;
    Buffer.add_string b "]}";
    Buffer.contents b

  (* Minimal recursive-descent JSON reader: objects, arrays, strings,
     integers, and the literals true/false/null. Snapshots only use
     integers, so parsing is exact. *)
  type jv =
    | J_null
    | J_bool of bool
    | J_int of int
    | J_str of string
    | J_arr of jv list
    | J_obj of (string * jv) list

  exception Bad

  let parse_json (s : string) : jv =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then s.[!pos] else raise Bad in
    let advance () = incr pos in
    let rec skip_ws () =
      if !pos < n then
        match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
    in
    let expect c = if peek () = c then advance () else raise Bad in
    let lit l v =
      let len = String.length l in
      if !pos + len <= n && String.sub s !pos len = l then (pos := !pos + len; v)
      else raise Bad
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        match peek () with
        | '"' -> advance (); Buffer.contents b
        | '\\' ->
            advance ();
            (match peek () with
            | '"' -> Buffer.add_char b '"'; advance ()
            | '\\' -> Buffer.add_char b '\\'; advance ()
            | '/' -> Buffer.add_char b '/'; advance ()
            | 'n' -> Buffer.add_char b '\n'; advance ()
            | 'r' -> Buffer.add_char b '\r'; advance ()
            | 't' -> Buffer.add_char b '\t'; advance ()
            | 'b' -> Buffer.add_char b '\b'; advance ()
            | 'f' -> Buffer.add_char b '\012'; advance ()
            | 'u' ->
                advance ();
                if !pos + 4 > n then raise Bad;
                let h = String.sub s !pos 4 in
                pos := !pos + 4;
                let code = try int_of_string ("0x" ^ h) with _ -> raise Bad in
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                end
            | _ -> raise Bad);
            go ()
        | c ->
            advance ();
            Buffer.add_char b c;
            go ()
      in
      go ()
    in
    let parse_int () =
      let start = !pos in
      if peek () = '-' then advance ();
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = start then raise Bad;
      (* Reject floats/exponents: snapshots are integer-only. *)
      (if !pos < n then match s.[!pos] with '.' | 'e' | 'E' -> raise Bad | _ -> ());
      match int_of_string_opt (String.sub s start (!pos - start)) with
      | Some v -> v
      | None -> raise Bad
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | '{' ->
          advance ();
          skip_ws ();
          if peek () = '}' then (advance (); J_obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); members ((k, v) :: acc)
              | '}' -> advance (); J_obj (List.rev ((k, v) :: acc))
              | _ -> raise Bad
            in
            members []
      | '[' ->
          advance ();
          skip_ws ();
          if peek () = ']' then (advance (); J_arr [])
          else
            let rec elems acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | ',' -> advance (); elems (v :: acc)
              | ']' -> advance (); J_arr (List.rev (v :: acc))
              | _ -> raise Bad
            in
            elems []
      | '"' -> J_str (parse_string ())
      | 't' -> lit "true" (J_bool true)
      | 'f' -> lit "false" (J_bool false)
      | 'n' -> lit "null" J_null
      | _ -> J_int (parse_int ())
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then raise Bad;
    v

  let jint = function J_int v -> v | _ -> raise Bad
  let jstr = function J_str v -> v | _ -> raise Bad

  let jfield o k =
    match o with
    | J_obj fields -> ( match List.assoc_opt k fields with Some v -> v | None -> raise Bad)
    | _ -> raise Bad

  let jpairs = function
    | J_arr l ->
        List.map
          (function J_arr [ J_int a; J_int b ] -> (a, b) | _ -> raise Bad)
          l
    | _ -> raise Bad

  let metric_of_j o =
    let k = jstr (jfield o "k") in
    let m =
      match jstr (jfield o "t") with
      | "c" -> Counter (jint (jfield o "v"))
      | "g" -> Gauge { last = jint (jfield o "last"); max = jint (jfield o "max") }
      | "h" ->
          Histogram
            {
              n = jint (jfield o "n");
              sum = jint (jfield o "sum");
              min = jint (jfield o "min");
              max = jint (jfield o "max");
              buckets = jpairs (jfield o "b");
            }
      | "s" ->
          Span
            {
              n = jint (jfield o "n");
              total = jint (jfield o "total");
              min = jint (jfield o "min");
              max = jint (jfield o "max");
              buckets = jpairs (jfield o "b");
              recent = jpairs (jfield o "r");
            }
      | _ -> raise Bad
    in
    (k, m)

  let of_json line =
    match parse_json line with
    | exception Bad -> None
    | j -> (
        match jfield j "obs" with
        | J_arr entries -> ( try Some (List.map metric_of_j entries) with Bad -> None)
        | _ | (exception Bad) -> None)

  let pp ppf (s : t) =
    List.iter
      (fun (name, m) ->
        match m with
        | Counter v -> Format.fprintf ppf "%-34s counter    %d@." name v
        | Gauge g -> Format.fprintf ppf "%-34s gauge      last=%d max=%d@." name g.last g.max
        | Histogram h ->
            Format.fprintf ppf "%-34s histogram  n=%d sum=%d min=%d max=%d@." name h.n h.sum
              h.min h.max
        | Span sp ->
            Format.fprintf ppf "%-34s span       n=%d total=%d min=%d max=%d@." name sp.n
              sp.total sp.min sp.max)
      s
end

let snapshot () : Snapshot.t =
  let reg = registry () in
  Hashtbl.fold
    (fun name m acc ->
      let s =
        match m with
        | M_counter c -> Snapshot.Counter !c
        | M_gauge g -> Snapshot.Gauge { last = g.g_last; max = g.g_max }
        | M_hist h ->
            let n, sum, min, max, buckets = Snapshot.hist_fields h in
            Snapshot.Histogram { n; sum; min; max; buckets }
        | M_span sp ->
            let n, total, min, max, buckets = Snapshot.hist_fields sp.s_durs in
            Snapshot.Span { n; total; min; max; buckets; recent = sp.s_recent }
      in
      (name, s) :: acc)
    reg []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
