(* A tour of the x-ability theory itself: histories, patterns, the
   reduction rules of Figure 4, and history signatures — on handcrafted
   histories, with no simulator involved.

   Run with: dune exec examples/reduction_demo.exe *)

open Xability

let kinds = function
  | "charge" -> Some Action.Idempotent
  | "book" -> Some Action.Undoable
  | _ -> None

let iv = Value.pair (Value.int 1) (Value.str "req")
let s a = Event.S (a, iv)
let c a ov = Event.C (a, iv, ov)
let cancel = Action.cancel_name "book"
let commit = Action.commit_name "book"

let show title h =
  Format.printf "@.== %s ==@.history:  %a@." title History.pp_compact h

let reduce_and_print h =
  let nf = Reduction.reduce_greedy ~kinds h in
  Format.printf "reduced:  %a@." History.pp_compact nf;
  List.iter
    (fun (a, _, ov) ->
      Format.printf "signature: (%s, %s)@." a (Value.to_string ov))
    (Signature.signatures ~kinds h)

let () =
  (* Rule 18: an idempotent action, retried after a failure. *)
  let h1 = [ s "charge"; s "charge"; c "charge" (Value.int 99) ] in
  show "idempotent retry (rule 18)" h1;
  reduce_and_print h1;
  Format.printf "x-able: %b@."
    (Xable.x_able ~kinds ~kind:Action.Idempotent ~action:"charge" ~iv h1);

  (* Rule 19: an undoable action, cancelled and re-executed. *)
  let h2 =
    [
      s "book"; c "book" (Value.int 12);
      s cancel; c cancel Value.nil;
      s "book"; c "book" (Value.int 12);
      s commit; c commit Value.nil;
    ]
  in
  show "undoable cancel + retry (rule 19)" h2;
  reduce_and_print h2;

  (* Rule 20: a duplicated commit (two processes finalized the round). *)
  let h3 =
    [
      s "book"; c "book" (Value.int 12);
      s commit; c commit Value.nil;
      s commit; c commit Value.nil;
    ]
  in
  show "duplicate commit (rule 20)" h3;
  reduce_and_print h3;

  (* A history that is NOT x-able: two completions of a non-deterministic
     idempotent action with different outputs — no rule can reconcile
     them, which is exactly why the protocol agrees on results. *)
  let h4 =
    [ s "charge"; c "charge" (Value.int 1); s "charge"; c "charge" (Value.int 2) ]
  in
  show "conflicting outputs (irreducible)" h4;
  reduce_and_print h4;
  Format.printf "x-able: %b (expected: false)@."
    (Xable.x_able ~kinds ~kind:Action.Idempotent ~action:"charge" ~iv h4);

  (* Pattern matching, straight from Figure 2. *)
  Format.printf "@.== pattern matching (Figure 2) ==@.";
  let attempt = Pattern.Maybe ("charge", iv, Value.int 99) in
  let success = Pattern.Complete ("charge", iv, Value.int 99) in
  Format.printf "Λ ⊨ ?[charge]:            %b@."
    (Pattern.matches_simple [] attempt);
  Format.printf "S ⊨ ?[charge]:            %b@."
    (Pattern.matches_simple [ s "charge" ] attempt);
  Format.printf "S C ⊨ [charge]:           %b@."
    (Pattern.matches_simple [ s "charge"; c "charge" (Value.int 99) ] success);
  Format.printf "S S C ⊨ ?[charge]‖[charge]: %b@."
    (Pattern.matches
       [ s "charge"; s "charge"; c "charge" (Value.int 99) ]
       (Pattern.Interleaved (attempt, [], success)))
