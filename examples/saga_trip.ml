(* Saga: one request whose execution is a sequence of undoable actions.

   A "book trip" request reserves a seat AND pays for it — two undoable
   actions on two different external services, executed as one composite
   action.  If the protocol aborts a round (crash, false suspicion), the
   rollback cascades: the payment hold is released and the seat freed, in
   reverse order.  The committed round leaves exactly one seat and one
   payment.

   Run with: dune exec examples/saga_trip.exe *)

open Xability

let () =
  let eng = Xsim.Engine.create ~seed:4242 () in
  let env =
    Xsm.Environment.create eng
      ~config:{ Xsm.Environment.default_config with fail_prob = 0.25 }
      ()
  in
  let bank =
    Xsm.Services.Bank.register env
      ~accounts:[ ("traveller", 500); ("airline", 0) ]
      ()
  in
  let booking = Xsm.Services.Booking.register env ~seats:12 () in
  let trip =
    Xsm.Composite.register env "book_trip"
      ~steps:(fun ~rid:_ ~payload ~rng:_ ->
        let fare = Option.value ~default:100 (Value.as_int payload) in
        [
          {
            Xsm.Composite.step_action = "reserve";
            step_kind = Action.Undoable;
            step_input = Value.str "traveller";
          };
          {
            Xsm.Composite.step_action = "transfer";
            step_kind = Action.Undoable;
            step_input =
              Value.pair
                (Value.pair (Value.str "traveller") (Value.str "airline"))
                (Value.int fare);
          };
        ])
  in
  let svc =
    Xreplication.Service.create eng env Xreplication.Service.default_config
  in
  let client = Xreplication.Service.client svc 0 in
  let issued = ref [] in
  Xsim.Engine.spawn eng
    ~proc:(Xreplication.Client.proc client)
    ~name:"traveller"
    (fun () ->
      List.iter
        (fun fare ->
          let req =
            Xreplication.Client.request client ~action:"book_trip"
              ~kind:Action.Undoable ~input:(Value.int fare)
          in
          issued := req :: !issued;
          let outputs = Xreplication.Client.submit_until_success client req in
          Format.printf "t=%6d  trip booked (fare %d) -> %s@."
            (Xsim.Engine.now eng) fare (Value.to_string outputs))
        [ 120; 90 ]);
  Xsim.Engine.schedule eng ~delay:250 (fun () ->
      Format.printf "t=%6d  *** crash replica.0 ***@." (Xsim.Engine.now eng);
      Xreplication.Service.kill_replica svc 0);
  (match Xreplication.Service.oracle svc with
  | Some o ->
      Xdetect.Oracle.enable_noise o ~probability:0.06 ~duration:150
        ~until:6_000 ()
  | None -> ());
  Xsim.Engine.run ~limit:500_000 eng;
  Xsim.Engine.run ~limit:(Xsim.Engine.now eng + 15_000) eng;

  Format.printf "@.confirmed seats: %d   outstanding holds: %d@."
    (List.length (Xsm.Services.Booking.confirmed booking))
    (Xsm.Services.Booking.held_seats booking);
  Format.printf "traveller: %d   airline: %d   (conserved: %b)@."
    (Xsm.Services.Bank.posted_balance bank "traveller")
    (Xsm.Services.Bank.posted_balance bank "airline")
    (Xsm.Services.Bank.total_money bank = 500);
  (* Verify the composite AND all its steps are exactly-once. *)
  let expected =
    List.concat_map
      (fun (req : Xsm.Request.t) ->
        Xsm.Environment.checker_expected env req
        :: List.map
             (Xsm.Environment.checker_expected env)
             (Xsm.Composite.sub_requests trip ~rid:req.Xsm.Request.rid))
      (List.rev !issued)
  in
  let report =
    Checker.check
      ~kinds:(Xsm.Environment.kind_of env)
      ~logical_of:Xsm.Request.logical_of_env_iv ~check_order:false ~expected
      (Xsm.Environment.history env)
  in
  Format.printf "saga + steps x-able: %b  (history: %d events)@."
    report.Checker.ok
    (History.length (Xsm.Environment.history env));
  List.iter (Format.printf "  violation: %s@.") report.Checker.violations;
  let ok =
    report.Checker.ok
    && List.length (Xsm.Services.Booking.confirmed booking) = 2
    && Xsm.Services.Bank.posted_balance bank "airline" = 210
    && Xsm.Services.Booking.held_seats booking = 0
    && Xsm.Environment.violations env = []
  in
  Format.printf "exactly-once saga: %b@." ok;
  if not ok then exit 1
