(* Travel agency: undoable actions under heavy weather.

   Seat reservations are undoable (a hold that is committed or released),
   with non-deterministic seat assignment.  We inject action failures,
   false suspicions, and an owner crash; the protocol must cancel every
   abandoned hold, commit exactly one reservation per passenger, and the
   environment history must reduce to a failure-free booking sequence.

   Run with: dune exec examples/travel_agency.exe *)

open Xability

let () =
  let eng = Xsim.Engine.create ~seed:31337 () in
  let env =
    Xsm.Environment.create eng
      ~config:
        {
          Xsm.Environment.default_config with
          fail_prob = 0.3;
          fail_after_prob = 0.5;
          finalize_fail_prob = 0.15;
        }
      ()
  in
  let booking = Xsm.Services.Booking.register env ~seats:16 () in
  let svc =
    Xreplication.Service.create eng env Xreplication.Service.default_config
  in
  let client = Xreplication.Service.client svc 0 in

  let passengers = [ "ada"; "grace"; "barbara"; "frances"; "hedy" ] in
  let issued = ref [] in
  Xsim.Engine.spawn eng
    ~proc:(Xreplication.Client.proc client)
    ~name:"agency"
    (fun () ->
      List.iter
        (fun passenger ->
          let req =
            Xreplication.Client.request client ~action:"reserve"
              ~kind:Action.Undoable ~input:(Value.str passenger)
          in
          issued := req :: !issued;
          let seat = Xreplication.Client.submit_until_success client req in
          Format.printf "t=%6d  %-10s -> seat %s@." (Xsim.Engine.now eng)
            passenger (Value.to_string seat))
        passengers);

  Xsim.Engine.schedule eng ~delay:300 (fun () ->
      Format.printf "t=%6d  *** crash replica.0 ***@." (Xsim.Engine.now eng);
      Xreplication.Service.kill_replica svc 0);
  (match Xreplication.Service.oracle svc with
  | Some o ->
      Xdetect.Oracle.enable_noise o ~probability:0.08 ~duration:150
        ~until:8_000 ()
  | None -> ());

  Xsim.Engine.run ~limit:500_000 eng;
  (* Let cleaners finish any trailing cancellations/commits. *)
  Xsim.Engine.run ~limit:(Xsim.Engine.now eng + 10_000) eng;

  Format.printf "@.confirmed seats:@.";
  List.iter
    (fun (seat, passenger) -> Format.printf "  seat %2d: %s@." seat passenger)
    (Xsm.Services.Booking.confirmed booking);
  Format.printf "held (leaked) seats: %d   free: %d@."
    (Xsm.Services.Booking.held_seats booking)
    (Xsm.Services.Booking.free_seats booking);

  let expected =
    List.rev_map (Xsm.Environment.checker_expected env) !issued
  in
  let report =
    Checker.check
      ~kinds:(Xsm.Environment.kind_of env)
      ~logical_of:Xsm.Request.logical_of_env_iv ~expected
      (Xsm.Environment.history env)
  in
  Format.printf "history x-able: %b  (%d events reduced away)@."
    report.Checker.ok
    (History.length (Xsm.Environment.history env)
    - (4 * List.length passengers));
  List.iter (Format.printf "  violation: %s@.") report.Checker.violations;
  let ok =
    report.Checker.ok
    && List.length (Xsm.Services.Booking.confirmed booking)
       = List.length passengers
    && Xsm.Services.Booking.held_seats booking = 0
    && Xsm.Environment.violations env = []
  in
  Format.printf "exactly-once bookings: %b@." ok;
  if not ok then exit 1
