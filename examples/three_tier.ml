(* Three-tier composition: the scenario that motivates the paper's
   introduction.  A client invokes a replicated middle-tier order service,
   which itself invokes a replicated back-end bank.

   X-ability is local (paper section 1): the back-end service is x-able,
   so the middle tier may treat [backend.submit] as an idempotent action —
   it re-invokes it freely on retry, keyed by a stable request id, and the
   back end deduplicates.  We register the middle-tier action as *raw*
   (every middle-tier execution really does call the back end again), so
   any duplicate invocations are visible — and the back end absorbs them.

   We crash one replica in each tier and inject false suspicions; the run
   must end with exactly one posted transfer per order and an x-able
   back-end history.

   Run with: dune exec examples/three_tier.exe *)

open Xability

let () =
  let eng = Xsim.Engine.create ~seed:777 () in

  (* ---------- Back end: a replicated bank ---------- *)
  let backend_env = Xsm.Environment.create eng () in
  let bank =
    Xsm.Services.Bank.register backend_env
      ~accounts:[ ("store", 0); ("alice", 1_000) ]
      ()
  in
  let backend =
    Xreplication.Service.create eng backend_env
      Xreplication.Service.default_config
  in
  (* The gateway stub the middle tier uses to call the back end. *)
  let gateway = Xreplication.Service.client backend 0 in

  (* ---------- Middle tier: a replicated order service ---------- *)
  let middle_env = Xsm.Environment.create eng () in
  let backend_requests = Hashtbl.create 16 in
  (* Raw on purpose: every execution really invokes the back end.  The
     composition is exactly-once because the back-end submit is
     idempotent when keyed by a stable request id. *)
  Xsm.Environment.register_raw middle_env "place_order"
    (fun ~rid ~payload ~rng:_ ->
      let amount =
        match Value.as_int payload with Some a -> a | None -> 0
      in
      let backend_req =
        (* Stable id: retries of the same order hit the same back-end
           logical request. *)
        Xsm.Request.make ~rid:(1_000_000 + rid) ~action:"transfer"
          ~kind:Action.Undoable
          ~input:
            (Value.pair
               (Value.pair (Value.str "alice") (Value.str "store"))
               (Value.int amount))
      in
      if not (Hashtbl.mem backend_requests backend_req.Xsm.Request.rid) then
        Hashtbl.replace backend_requests backend_req.Xsm.Request.rid
          backend_req;
      Xreplication.Client.submit_until_success gateway backend_req);
  let middle =
    Xreplication.Service.create eng middle_env
      Xreplication.Service.default_config
  in
  let client = Xreplication.Service.client middle 0 in

  (* ---------- Workload: three orders ---------- *)
  let completed = ref 0 in
  Xsim.Engine.spawn eng
    ~proc:(Xreplication.Client.proc client)
    ~name:"shopper"
    (fun () ->
      List.iter
        (fun amount ->
          let req =
            Xreplication.Client.request client ~action:"place_order"
              ~kind:Action.Idempotent (* declared kind; env treats it raw *)
              ~input:(Value.int amount)
          in
          let v = Xreplication.Client.submit_until_success client req in
          incr completed;
          Format.printf "t=%6d  order of %4d placed -> charged %s@."
            (Xsim.Engine.now eng) amount (Value.to_string v))
        [ 120; 75; 250 ]);

  (* ---------- Faults in both tiers ---------- *)
  Xsim.Engine.schedule eng ~delay:200 (fun () ->
      Format.printf "t=%6d  *** crash middle replica.0 ***@."
        (Xsim.Engine.now eng);
      Xreplication.Service.kill_replica middle 0);
  Xsim.Engine.schedule eng ~delay:900 (fun () ->
      Format.printf "t=%6d  *** crash backend replica.1 ***@."
        (Xsim.Engine.now eng);
      Xreplication.Service.kill_replica backend 1);
  (match Xreplication.Service.oracle middle with
  | Some o ->
      Xdetect.Oracle.enable_noise o ~probability:0.05 ~duration:150
        ~until:5_000 ()
  | None -> ());

  Xsim.Engine.run ~limit:500_000 eng;

  (* ---------- End-to-end verification at the BACK END ---------- *)
  Format.printf "@.orders completed: %d/3@." !completed;
  let backend_expected =
    Hashtbl.fold
      (fun _ req acc -> Xsm.Environment.checker_expected backend_env req :: acc)
      backend_requests []
  in
  let report =
    Checker.check
      ~kinds:(Xsm.Environment.kind_of backend_env)
      ~logical_of:Xsm.Request.logical_of_env_iv
      ~check_order:false (* orders are independent; only dedup matters *)
      ~expected:backend_expected
      (Xsm.Environment.history backend_env)
  in
  Format.printf "back-end history x-able: %b@." report.Checker.ok;
  List.iter (Format.printf "  violation: %s@.") report.Checker.violations;
  Format.printf "posted transfers: %d (expected 3)@."
    (Xsm.Services.Bank.posted_transfers bank);
  Format.printf "alice: %d   store: %d   (money conserved: %b)@."
    (Xsm.Services.Bank.posted_balance bank "alice")
    (Xsm.Services.Bank.posted_balance bank "store")
    (Xsm.Services.Bank.total_money bank = 1_000);
  let middle_execs =
    List.fold_left
      (fun acc (s : Xsm.Environment.key_stats) -> acc + s.applied)
      0
      (Xsm.Environment.stats middle_env)
  in
  Format.printf
    "middle-tier executions of place_order: %d (>3 means retries happened, \
     absorbed by the back end)@."
    middle_execs;
  if
    not
      (report.Checker.ok && !completed = 3
      && Xsm.Services.Bank.posted_transfers bank = 3)
  then exit 1
