(* Quickstart: replicate a mail-sending service with the paper's protocol,
   crash the first owner mid-request, and verify that the run is x-able —
   the mail was sent exactly once even though the service retried.

   Run with: dune exec examples/quickstart.exe *)

open Xability

let () =
  (* 1. A deterministic simulated world. *)
  let eng = Xsim.Engine.create ~seed:2026 () in
  let env = Xsm.Environment.create eng () in

  (* 2. A third-party service with side-effects: a mail gateway whose
     [send] deduplicates by request id (an idempotent action). *)
  let mailer = Xsm.Services.Mailer.register env () in

  (* 3. A replicated service: 3 replicas, oracle failure detector,
     register-based consensus objects. *)
  let svc =
    Xreplication.Service.create eng env Xreplication.Service.default_config
  in
  let client = Xreplication.Service.client svc 0 in

  (* 4. A client workload: three mails, submitted sequentially. *)
  let issued = ref [] in
  Xsim.Engine.spawn eng
    ~proc:(Xreplication.Client.proc client)
    ~name:"workload"
    (fun () ->
      List.iter
        (fun body ->
          let req =
            Xreplication.Client.request client ~action:"send"
              ~kind:Action.Idempotent ~input:(Value.str body)
          in
          issued := req :: !issued;
          let reply = Xreplication.Client.submit_until_success client req in
          Format.printf "t=%6d  sent %-18s -> message id %s@."
            (Xsim.Engine.now eng) body (Value.to_string reply))
        [ "hello world"; "x-ability rocks"; "exactly once" ]);

  (* 5. Crash the replica that owns the first request, mid-execution. *)
  Xsim.Engine.schedule eng ~delay:120 (fun () ->
      Format.printf "t=%6d  *** crash replica.0 ***@." (Xsim.Engine.now eng);
      Xreplication.Service.kill_replica svc 0);

  Xsim.Engine.run ~limit:200_000 eng;

  (* 6. Verify: the environment history reduces to a failure-free history
     of the three requests — the formal exactly-once guarantee. *)
  let history = Xsm.Environment.history env in
  Format.printf "@.environment history (%d events):@.  %a@.@."
    (History.length history) History.pp_compact history;
  let expected =
    List.rev_map (Xsm.Environment.checker_expected env) !issued
  in
  let report =
    Checker.check
      ~kinds:(Xsm.Environment.kind_of env)
      ~logical_of:Xsm.Request.logical_of_env_iv ~expected history
  in
  Format.printf "x-able (R3): %b@." report.Checker.ok;
  List.iter (Format.printf "  violation: %s@.") report.Checker.violations;
  Format.printf "mail deliveries: %d (duplicates: %d)@."
    (Xsm.Services.Mailer.delivery_count mailer)
    (Xsm.Services.Mailer.duplicate_count mailer);
  let totals = Xreplication.Service.totals svc in
  Format.printf "protocol: %d owner rounds, %d cleanups, %d takeovers@."
    totals.Xreplication.Service.rounds_owned
    totals.Xreplication.Service.cleanups
    totals.Xreplication.Service.takeovers;
  if not report.Checker.ok then exit 1
